#include "workflows/generated.h"

#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"

namespace miras::workflows {

Ensemble make_generated_ensemble(const GeneratedOptions& options) {
  MIRAS_EXPECTS(options.num_task_types > 0);
  MIRAS_EXPECTS(options.num_workflows > 0);
  MIRAS_EXPECTS(options.min_nodes >= 1);
  MIRAS_EXPECTS(options.max_nodes >= options.min_nodes);
  MIRAS_EXPECTS(options.service_mean_min > 0.0);
  MIRAS_EXPECTS(options.service_mean_max >= options.service_mean_min);
  MIRAS_EXPECTS(options.service_cv >= 0.0);
  MIRAS_EXPECTS(options.extra_edge_prob >= 0.0 &&
                options.extra_edge_prob <= 1.0);
  MIRAS_EXPECTS(options.consumer_budget > 0);
  MIRAS_EXPECTS(options.utilization > 0.0);

  Rng rng(options.seed);
  Ensemble ensemble("generated");

  for (std::size_t j = 0; j < options.num_task_types; ++j) {
    const double mean =
        rng.uniform(options.service_mean_min, options.service_mean_max);
    ensemble.add_task_type("Svc" + std::to_string(j),
                           ServiceTimeModel::lognormal(mean,
                                                       options.service_cv));
  }

  const auto last_type =
      static_cast<std::int64_t>(options.num_task_types) - 1;
  for (std::size_t w = 0; w < options.num_workflows; ++w) {
    WorkflowGraph graph("Gen" + std::to_string(w));
    const auto nodes = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_nodes),
        static_cast<std::int64_t>(options.max_nodes)));
    for (std::size_t i = 0; i < nodes; ++i)
      graph.add_node(static_cast<std::size_t>(rng.uniform_int(0, last_type)));

    // One guaranteed predecessor per non-first node keeps every node
    // reachable from a root; extra forward edges add the fan-in/fan-out
    // joins the dependency service has to resolve. Edges always point from
    // a lower to a higher node index, so the graph is a DAG by construction.
    std::vector<bool> has_edge(nodes * nodes, false);
    for (std::size_t i = 1; i < nodes; ++i) {
      const auto pred = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      graph.add_edge(pred, i);
      has_edge[pred * nodes + i] = true;
    }
    for (std::size_t a = 0; a + 1 < nodes; ++a) {
      for (std::size_t b = a + 1; b < nodes; ++b) {
        // Always consume the draw so the stream position is independent of
        // which edges happen to exist already.
        const bool want = rng.uniform() < options.extra_edge_prob;
        if (want && !has_edge[a * nodes + b]) {
          graph.add_edge(a, b);
          has_edge[a * nodes + b] = true;
        }
      }
    }
    ensemble.add_workflow(std::move(graph), 1.0);
  }

  // Normalise the per-workflow unit rates so the steady-state demand is a
  // fixed fraction of the consumer budget: below 1.0 the system is feasible
  // but loaded, which is the regime the throughput benches should exercise.
  const double load = ensemble.offered_load();
  MIRAS_ASSERT(load > 0.0);
  ensemble.scale_arrival_rates(
      options.utilization * static_cast<double>(options.consumer_budget) /
      load);
  ensemble.validate();
  return ensemble;
}

}  // namespace miras::workflows
