#include "workflows/ligo.h"

namespace miras::workflows {

Ensemble make_ligo_ensemble(const LigoOptions& options) {
  Ensemble ensemble("ligo");
  const double cv = options.service_cv;
  const auto datafind = ensemble.add_task_type(
      "DataFind", ServiceTimeModel::lognormal(3.0, cv));
  const auto tmpltbank = ensemble.add_task_type(
      "TmpltBank", ServiceTimeModel::lognormal(5.0, cv));
  const auto inspiral = ensemble.add_task_type(
      "Inspiral", ServiceTimeModel::lognormal(12.0, cv));
  const auto thinca =
      ensemble.add_task_type("Thinca", ServiceTimeModel::lognormal(4.0, cv));
  const auto trigbank = ensemble.add_task_type(
      "TrigBank", ServiceTimeModel::lognormal(3.0, cv));
  const auto sire =
      ensemble.add_task_type("Sire", ServiceTimeModel::lognormal(4.0, cv));
  const auto coire =
      ensemble.add_task_type("Coire", ServiceTimeModel::lognormal(10.0, cv));
  const auto inca =
      ensemble.add_task_type("Inca", ServiceTimeModel::lognormal(5.0, cv));
  const auto injfind =
      ensemble.add_task_type("InjFind", ServiceTimeModel::lognormal(4.0, cv));

  {
    // Light data-discovery workflow; arrives most often.
    WorkflowGraph wf("DataFind");
    const auto a = wf.add_node(datafind);
    const auto b = wf.add_node(inca);
    wf.add_edge(a, b);
    ensemble.add_workflow(std::move(wf), 0.10 * options.load_factor);
  }
  {
    // Category-veto analysis chain ending at the shared Coire stage.
    WorkflowGraph wf("CAT");
    const auto a = wf.add_node(datafind);
    const auto b = wf.add_node(tmpltbank);
    const auto c = wf.add_node(inspiral);
    const auto d = wf.add_node(thinca);
    const auto e = wf.add_node(coire);
    wf.add_edge(a, b);
    wf.add_edge(b, c);
    wf.add_edge(c, d);
    wf.add_edge(d, e);
    ensemble.add_workflow(std::move(wf), 0.08 * options.load_factor);
  }
  {
    // Full analysis with a parallel Inspiral/TrigBank branch joining at
    // Thinca, then Sire -> Coire.
    WorkflowGraph wf("Full");
    const auto a = wf.add_node(datafind);
    const auto b = wf.add_node(tmpltbank);
    const auto c = wf.add_node(inspiral);
    const auto d = wf.add_node(trigbank);
    const auto e = wf.add_node(thinca);
    const auto f = wf.add_node(sire);
    const auto g = wf.add_node(coire);
    wf.add_edge(a, b);
    wf.add_edge(b, c);
    wf.add_edge(b, d);
    wf.add_edge(c, e);
    wf.add_edge(d, e);
    wf.add_edge(e, f);
    wf.add_edge(f, g);
    ensemble.add_workflow(std::move(wf), 0.06 * options.load_factor);
  }
  {
    // Software-injection run: injection finding replaces data discovery.
    WorkflowGraph wf("Injection");
    const auto a = wf.add_node(injfind);
    const auto b = wf.add_node(tmpltbank);
    const auto c = wf.add_node(inspiral);
    const auto d = wf.add_node(thinca);
    const auto e = wf.add_node(sire);
    const auto f = wf.add_node(coire);
    wf.add_edge(a, b);
    wf.add_edge(b, c);
    wf.add_edge(c, d);
    wf.add_edge(d, e);
    wf.add_edge(e, f);
    ensemble.add_workflow(std::move(wf), 0.06 * options.load_factor);
  }
  ensemble.validate();
  return ensemble;
}

}  // namespace miras::workflows
