// Per-task service-time models. The paper notes that "the processing time of
// each microservice is not fixed, due to variant sizes of input data"
// (§II-C); we model that with deterministic, exponential, or lognormal
// distributions parameterised by mean and coefficient of variation.
#pragma once

#include "common/rng.h"

namespace miras::workflows {

class ServiceTimeModel {
 public:
  enum class Kind { kDeterministic, kExponential, kLognormal };

  /// Always exactly `mean` seconds. Requires mean > 0.
  static ServiceTimeModel deterministic(double mean);

  /// Exponential with the given mean (> 0).
  static ServiceTimeModel exponential(double mean);

  /// Lognormal with the given mean (> 0) and coefficient of variation
  /// (>= 0); this is the default for scientific image-processing tasks whose
  /// run time scales with input size.
  static ServiceTimeModel lognormal(double mean, double cv);

  Kind kind() const { return kind_; }
  double mean() const { return mean_; }
  double cv() const { return cv_; }

  /// Draws one service time (always > 0).
  double sample(Rng& rng) const;

 private:
  ServiceTimeModel(Kind kind, double mean, double cv);

  Kind kind_;
  double mean_;
  double cv_;
  // Precomputed lognormal parameters.
  double log_mu_ = 0.0;
  double log_sigma_ = 0.0;
};

}  // namespace miras::workflows
