// LIGO Inspiral analysis ensemble: 4 workflow types (DataFind, CAT, Full,
// Injection) over 9 task types (§VI-A1, after Juve et al., "Characterizing
// and profiling scientific workflows", FGCS 2013). The Pegasus LIGO DAGs are
// far larger than 9 nodes; the paper models each *task type* as one
// microservice, so what matters is which types each workflow touches and in
// what order. These graphs preserve the properties the evaluation exercises:
// 9-dimensional state, deeper topologies than MSD, heavy sharing (Coire is
// the shared tail stage of CAT/Full/Injection — the queue MIRAS learns to
// temporarily starve, §VI-D), and a cheap high-volume DataFind workflow.
#pragma once

#include "workflows/ensemble.h"

namespace miras::workflows {

struct LigoOptions {
  double load_factor = 1.0;
  double service_cv = 0.6;
};

struct LigoTasks {
  static constexpr std::size_t kDataFind = 0;   // mean 3 s
  static constexpr std::size_t kTmpltBank = 1;  // 5 s
  static constexpr std::size_t kInspiral = 2;   // 12 s
  static constexpr std::size_t kThinca = 3;     // 4 s
  static constexpr std::size_t kTrigBank = 4;   // 3 s
  static constexpr std::size_t kSire = 5;       // 4 s
  static constexpr std::size_t kCoire = 6;      // 10 s
  static constexpr std::size_t kInca = 7;       // 5 s
  static constexpr std::size_t kInjFind = 8;    // 4 s
  static constexpr std::size_t kCount = 9;
};

/// Workflow ids in registration order: 0 = DataFind, 1 = CAT, 2 = Full,
/// 3 = Injection.
Ensemble make_ligo_ensemble(const LigoOptions& options = {});

/// The consumer budget the paper uses for LIGO (§VI-A4).
constexpr int kLigoConsumerBudget = 30;

}  // namespace miras::workflows
