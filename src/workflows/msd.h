// Material Science Data processing (MSD) ensemble: 3 workflow types over
// 4 task types (§VI-A1, following the MONAD papers' 4SM material-science
// image pipelines). The paper's production traces are not public, so the
// DAG shapes and service-time scales here are synthetic equivalents chosen
// to preserve the control-relevant structure: a shared ingest stage, two
// alternative heavy processing stages, a shared final analysis stage, and a
// third workflow type that exercises fan-out/fan-in parallelism.
#pragma once

#include "workflows/ensemble.h"

namespace miras::workflows {

struct MsdOptions {
  /// Multiplies all steady-state Poisson arrival rates.
  double load_factor = 1.0;
  /// Coefficient of variation of the lognormal task service times.
  double service_cv = 0.5;
};

/// Task-type ids within the MSD ensemble, in registration order.
struct MsdTasks {
  static constexpr std::size_t kIngest = 0;   // image ingest/denoise, mean 2 s
  static constexpr std::size_t kAlign = 1;    // registration/alignment, 6 s
  static constexpr std::size_t kSegment = 2;  // segmentation, 8 s
  static constexpr std::size_t kAnalyze = 3;  // statistics/analysis, 3 s
  static constexpr std::size_t kCount = 4;
};

/// Workflows: Type1 = Ingest->Align->Analyze, Type2 = Ingest->Segment->
/// Analyze, Type3 = Ingest->(Align || Segment)->Analyze.
Ensemble make_msd_ensemble(const MsdOptions& options = {});

/// The consumer budget the paper uses for MSD (§VI-A4).
constexpr int kMsdConsumerBudget = 14;

}  // namespace miras::workflows
