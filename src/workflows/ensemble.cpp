#include "workflows/ensemble.h"

#include "common/contracts.h"

namespace miras::workflows {

Ensemble::Ensemble(std::string name) : name_(std::move(name)) {}

std::size_t Ensemble::add_task_type(std::string task_name,
                                    ServiceTimeModel service_time) {
  task_types_.push_back({std::move(task_name), service_time});
  return task_types_.size() - 1;
}

std::size_t Ensemble::add_workflow(WorkflowGraph graph, double arrival_rate) {
  MIRAS_EXPECTS(arrival_rate >= 0.0);
  graph.validate();
  for (std::size_t n = 0; n < graph.num_nodes(); ++n)
    MIRAS_EXPECTS(graph.task_type_of(n) < task_types_.size());
  workflows_.push_back(std::move(graph));
  arrival_rates_.push_back(arrival_rate);
  return workflows_.size() - 1;
}

const TaskTypeInfo& Ensemble::task_type(std::size_t id) const {
  MIRAS_EXPECTS(id < task_types_.size());
  return task_types_[id];
}

const WorkflowGraph& Ensemble::workflow(std::size_t id) const {
  MIRAS_EXPECTS(id < workflows_.size());
  return workflows_[id];
}

double Ensemble::arrival_rate(std::size_t workflow_id) const {
  MIRAS_EXPECTS(workflow_id < arrival_rates_.size());
  return arrival_rates_[workflow_id];
}

void Ensemble::scale_arrival_rates(double factor) {
  MIRAS_EXPECTS(factor > 0.0);
  for (double& rate : arrival_rates_) rate *= factor;
}

double Ensemble::offered_load() const {
  double load = 0.0;
  for (std::size_t w = 0; w < workflows_.size(); ++w) {
    double demand = 0.0;
    for (std::size_t n = 0; n < workflows_[w].num_nodes(); ++n)
      demand += task_types_[workflows_[w].task_type_of(n)].service_time.mean();
    load += arrival_rates_[w] * demand;
  }
  return load;
}

void Ensemble::validate() const {
  MIRAS_EXPECTS(!task_types_.empty());
  MIRAS_EXPECTS(!workflows_.empty());
  for (const auto& graph : workflows_) {
    graph.validate();
    for (std::size_t n = 0; n < graph.num_nodes(); ++n)
      MIRAS_EXPECTS(graph.task_type_of(n) < task_types_.size());
  }
}

}  // namespace miras::workflows
