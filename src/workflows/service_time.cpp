#include "workflows/service_time.h"

#include <cmath>

#include "common/contracts.h"

namespace miras::workflows {

ServiceTimeModel::ServiceTimeModel(Kind kind, double mean, double cv)
    : kind_(kind), mean_(mean), cv_(cv) {
  MIRAS_EXPECTS(mean > 0.0);
  MIRAS_EXPECTS(cv >= 0.0);
  if (kind_ == Kind::kLognormal) {
    // E[X] = exp(mu + sigma^2/2), CV^2 = exp(sigma^2) - 1.
    log_sigma_ = std::sqrt(std::log(1.0 + cv * cv));
    log_mu_ = std::log(mean) - 0.5 * log_sigma_ * log_sigma_;
  }
}

ServiceTimeModel ServiceTimeModel::deterministic(double mean) {
  return {Kind::kDeterministic, mean, 0.0};
}

ServiceTimeModel ServiceTimeModel::exponential(double mean) {
  return {Kind::kExponential, mean, 1.0};
}

ServiceTimeModel ServiceTimeModel::lognormal(double mean, double cv) {
  return {Kind::kLognormal, mean, cv};
}

double ServiceTimeModel::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kDeterministic:
      return mean_;
    case Kind::kExponential:
      return rng.exponential(1.0 / mean_);
    case Kind::kLognormal:
      return rng.lognormal(log_mu_, log_sigma_);
  }
  return mean_;
}

}  // namespace miras::workflows
