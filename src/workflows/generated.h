// Seeded procedural workflow-ensemble generator. MSD and LIGO pin the
// paper-scale scenarios (4 and 9 task types); the sharded simulator exists
// to run clusters far past that, so benches and property tests need
// ensembles with 64-256 task types that are still a pure deterministic
// function of a seed. Random DAG topologies with a guaranteed predecessor
// edge per non-first node (no disconnected floaters), lognormal service
// means, and arrival rates normalised so the offered load hits a target
// fraction of the consumer budget.
#pragma once

#include <cstdint>

#include "workflows/ensemble.h"

namespace miras::workflows {

struct GeneratedOptions {
  std::size_t num_task_types = 128;
  std::size_t num_workflows = 32;
  /// Node-count range per workflow DAG (inclusive).
  std::size_t min_nodes = 4;
  std::size_t max_nodes = 12;
  /// Service-time mean range (seconds, uniform per task type) and shared
  /// coefficient of variation (lognormal, like MSD/LIGO).
  double service_mean_min = 1.0;
  double service_mean_max = 8.0;
  double service_cv = 0.5;
  /// Probability of each additional forward edge beyond the spanning
  /// predecessor edge (fan-in/fan-out density).
  double extra_edge_prob = 0.25;
  /// Arrival rates are scaled uniformly so offered_load() ==
  /// utilization * consumer_budget (consumer-seconds per second).
  int consumer_budget = 128;
  double utilization = 0.7;
  std::uint64_t seed = 1;
};

/// Builds a validated ensemble; bit-identical for equal options.
Ensemble make_generated_ensemble(const GeneratedOptions& options = {});

}  // namespace miras::workflows
