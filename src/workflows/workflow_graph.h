// Workflow DAGs. Each workflow type is a directed acyclic graph whose nodes
// are *occurrences* of task types (the same task type may appear in several
// workflows — the microservice is shared, which is exactly the cascading-
// effect coupling the paper studies). Nodes are indexed locally within the
// workflow; each node carries the global task-type id it executes on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace miras::workflows {

class WorkflowGraph {
 public:
  explicit WorkflowGraph(std::string name);

  const std::string& name() const { return name_; }
  std::size_t num_nodes() const { return node_task_types_.size(); }

  /// Adds a node executing `task_type` (a global task-type id); returns the
  /// new node's local index.
  std::size_t add_node(std::size_t task_type);

  /// Adds a dependency edge: `to` cannot start until `from` completed.
  /// Rejects self-loops, out-of-range nodes, and duplicate edges.
  void add_edge(std::size_t from, std::size_t to);

  std::size_t task_type_of(std::size_t node) const;
  const std::vector<std::size_t>& successors(std::size_t node) const;
  const std::vector<std::size_t>& predecessors(std::size_t node) const;
  std::size_t in_degree(std::size_t node) const;

  /// Nodes with no predecessors (the tasks the workflow invoker publishes
  /// first). Non-empty for a valid graph.
  std::vector<std::size_t> roots() const;

  /// Nodes with no successors.
  std::vector<std::size_t> sinks() const;

  /// Topological order; throws ContractViolation if the graph has a cycle.
  std::vector<std::size_t> topological_order() const;

  /// True iff the graph is a DAG with at least one node.
  bool is_valid_dag() const;

  /// Throws ContractViolation unless is_valid_dag().
  void validate() const;

  /// Length (in node count) of the longest path; 0 for an empty graph.
  std::size_t longest_path_length() const;

 private:
  std::string name_;
  std::vector<std::size_t> node_task_types_;
  std::vector<std::vector<std::size_t>> successors_;
  std::vector<std::vector<std::size_t>> predecessors_;
};

}  // namespace miras::workflows
