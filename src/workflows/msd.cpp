#include "workflows/msd.h"

namespace miras::workflows {

Ensemble make_msd_ensemble(const MsdOptions& options) {
  Ensemble ensemble("msd");
  const double cv = options.service_cv;
  const auto ingest =
      ensemble.add_task_type("Ingest", ServiceTimeModel::lognormal(2.0, cv));
  const auto align =
      ensemble.add_task_type("Align", ServiceTimeModel::lognormal(6.0, cv));
  const auto segment =
      ensemble.add_task_type("Segment", ServiceTimeModel::lognormal(8.0, cv));
  const auto analyze =
      ensemble.add_task_type("Analyze", ServiceTimeModel::lognormal(3.0, cv));

  {
    WorkflowGraph type1("Type1");
    const auto a = type1.add_node(ingest);
    const auto b = type1.add_node(align);
    const auto c = type1.add_node(analyze);
    type1.add_edge(a, b);
    type1.add_edge(b, c);
    ensemble.add_workflow(std::move(type1), 0.10 * options.load_factor);
  }
  {
    WorkflowGraph type2("Type2");
    const auto a = type2.add_node(ingest);
    const auto b = type2.add_node(segment);
    const auto c = type2.add_node(analyze);
    type2.add_edge(a, b);
    type2.add_edge(b, c);
    ensemble.add_workflow(std::move(type2), 0.10 * options.load_factor);
  }
  {
    // Fan-out/fan-in: both Align and Segment must finish before Analyze.
    WorkflowGraph type3("Type3");
    const auto a = type3.add_node(ingest);
    const auto b = type3.add_node(align);
    const auto c = type3.add_node(segment);
    const auto d = type3.add_node(analyze);
    type3.add_edge(a, b);
    type3.add_edge(a, c);
    type3.add_edge(b, d);
    type3.add_edge(c, d);
    ensemble.add_workflow(std::move(type3), 0.10 * options.load_factor);
  }
  ensemble.validate();
  return ensemble;
}

}  // namespace miras::workflows
