#include "workflows/workflow_graph.h"

#include <algorithm>
#include <queue>

#include "common/contracts.h"

namespace miras::workflows {

WorkflowGraph::WorkflowGraph(std::string name) : name_(std::move(name)) {}

std::size_t WorkflowGraph::add_node(std::size_t task_type) {
  node_task_types_.push_back(task_type);
  successors_.emplace_back();
  predecessors_.emplace_back();
  return node_task_types_.size() - 1;
}

void WorkflowGraph::add_edge(std::size_t from, std::size_t to) {
  MIRAS_EXPECTS(from < num_nodes());
  MIRAS_EXPECTS(to < num_nodes());
  MIRAS_EXPECTS(from != to);
  const auto& succ = successors_[from];
  MIRAS_EXPECTS(std::find(succ.begin(), succ.end(), to) == succ.end());
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
}

std::size_t WorkflowGraph::task_type_of(std::size_t node) const {
  MIRAS_EXPECTS(node < num_nodes());
  return node_task_types_[node];
}

const std::vector<std::size_t>& WorkflowGraph::successors(
    std::size_t node) const {
  MIRAS_EXPECTS(node < num_nodes());
  return successors_[node];
}

const std::vector<std::size_t>& WorkflowGraph::predecessors(
    std::size_t node) const {
  MIRAS_EXPECTS(node < num_nodes());
  return predecessors_[node];
}

std::size_t WorkflowGraph::in_degree(std::size_t node) const {
  return predecessors(node).size();
}

std::vector<std::size_t> WorkflowGraph::roots() const {
  std::vector<std::size_t> result;
  for (std::size_t n = 0; n < num_nodes(); ++n)
    if (predecessors_[n].empty()) result.push_back(n);
  return result;
}

std::vector<std::size_t> WorkflowGraph::sinks() const {
  std::vector<std::size_t> result;
  for (std::size_t n = 0; n < num_nodes(); ++n)
    if (successors_[n].empty()) result.push_back(n);
  return result;
}

std::vector<std::size_t> WorkflowGraph::topological_order() const {
  std::vector<std::size_t> in_deg(num_nodes());
  for (std::size_t n = 0; n < num_nodes(); ++n)
    in_deg[n] = predecessors_[n].size();
  std::queue<std::size_t> ready;
  for (std::size_t n = 0; n < num_nodes(); ++n)
    if (in_deg[n] == 0) ready.push(n);
  std::vector<std::size_t> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const std::size_t n = ready.front();
    ready.pop();
    order.push_back(n);
    for (const std::size_t s : successors_[n])
      if (--in_deg[s] == 0) ready.push(s);
  }
  MIRAS_ENSURES(order.size() == num_nodes());  // fails iff there is a cycle
  return order;
}

bool WorkflowGraph::is_valid_dag() const {
  if (num_nodes() == 0) return false;
  try {
    (void)topological_order();
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

void WorkflowGraph::validate() const {
  MIRAS_EXPECTS(num_nodes() > 0);
  (void)topological_order();  // throws on a cycle
}

std::size_t WorkflowGraph::longest_path_length() const {
  if (num_nodes() == 0) return 0;
  const auto order = topological_order();
  std::vector<std::size_t> depth(num_nodes(), 1);
  for (const std::size_t n : order)
    for (const std::size_t s : successors_[n])
      depth[s] = std::max(depth[s], depth[n] + 1);
  return *std::max_element(depth.begin(), depth.end());
}

}  // namespace miras::workflows
