// A workflow ensemble: the set of task types (each backed by one
// microservice) plus the set of workflow DAGs composed from them, with
// steady-state Poisson arrival rates. This is the paper's "N workflow types
// composed of J types of tasks" (§II-B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workflows/service_time.h"
#include "workflows/workflow_graph.h"

namespace miras::workflows {

struct TaskTypeInfo {
  std::string name;
  ServiceTimeModel service_time;
};

class Ensemble {
 public:
  explicit Ensemble(std::string name);

  const std::string& name() const { return name_; }

  /// Registers a task type (== one microservice); returns its global id.
  std::size_t add_task_type(std::string task_name,
                            ServiceTimeModel service_time);

  /// Registers a workflow type with a steady-state Poisson arrival rate in
  /// requests/second. The graph must be a valid DAG whose node task types
  /// are all registered.
  std::size_t add_workflow(WorkflowGraph graph, double arrival_rate);

  std::size_t num_task_types() const { return task_types_.size(); }
  std::size_t num_workflows() const { return workflows_.size(); }

  const TaskTypeInfo& task_type(std::size_t id) const;
  const WorkflowGraph& workflow(std::size_t id) const;
  double arrival_rate(std::size_t workflow_id) const;

  /// Scales all arrival rates by `factor` (> 0); used to sweep load.
  void scale_arrival_rates(double factor);

  /// Mean total service demand per second across the ensemble, in
  /// consumer-seconds/second: sum over workflows of rate_i * sum of node
  /// service means. An allocation budget C below this value is infeasible in
  /// steady state.
  double offered_load() const;

  /// Validates every workflow graph and that all referenced task types
  /// exist. Throws ContractViolation on failure.
  void validate() const;

 private:
  std::string name_;
  std::vector<TaskTypeInfo> task_types_;
  std::vector<WorkflowGraph> workflows_;
  std::vector<double> arrival_rates_;
};

}  // namespace miras::workflows
