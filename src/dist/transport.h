// Pluggable byte-stream transports for the distributed actor-learner
// topology. A ByteStream is a bidirectional, reliable, ordered byte pipe
// between the learner and one collector; the wire layer (wire.h) frames
// persist-encoded messages over it and never cares which implementation
// carries the bytes:
//
//  - FdStream:        a connected socketpair/pipe fd pair (fork-spawned
//                     collector processes). EINTR-safe, poll-based timeouts.
//  - FileQueueStream: two append-only spool files in a shared directory —
//                     the fallback when no fd channel can be had (and a
//                     debuggable on-disk trace of the whole conversation).
//                     Peer liveness is checked via kill(pid, 0).
//  - LoopbackStream:  an in-memory queue pair for thread-spawned collectors
//                     and tests (no fork, so it is the TSan-friendly mode).
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace miras::dist {

enum class RecvStatus : std::uint8_t {
  kData,     // one or more bytes were received
  kTimeout,  // no data within the timeout; the stream is still open
  kClosed,   // end-of-stream: the peer is gone and no bytes remain
};

struct RecvResult {
  RecvStatus status = RecvStatus::kTimeout;
  std::size_t bytes = 0;
};

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Sends all `size` bytes (blocking until written). Throws
  /// std::runtime_error when the peer is gone.
  virtual void send(const void* data, std::size_t size) = 0;

  /// Receives up to `max` bytes, waiting at most `timeout_ms` (0 = just
  /// poll). Returns kData with bytes > 0, kTimeout, or kClosed.
  virtual RecvResult recv_some(void* data, std::size_t max,
                               int timeout_ms) = 0;
};

/// ByteStream over a connected fd (one end of a socketpair or a pipe pair).
/// Owns and closes the fds. `read_fd` and `write_fd` may be the same fd.
class FdStream final : public ByteStream {
 public:
  FdStream(int read_fd, int write_fd);
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  void send(const void* data, std::size_t size) override;
  RecvResult recv_some(void* data, std::size_t max, int timeout_ms) override;

  /// Closes the fds early (e.g. the parent's copy of a child's end).
  void close_fds();

 private:
  int read_fd_;
  int write_fd_;
};

/// Creates a connected AF_UNIX socketpair and wraps each end. first is
/// conventionally the learner end, second the collector end; after fork,
/// each process close_fds()es (or destroys) the end it does not use.
std::pair<std::unique_ptr<FdStream>, std::unique_ptr<FdStream>>
make_socketpair_streams();

/// ByteStream over two append-only spool files: bytes sent are appended to
/// `out_path`, bytes received are tailed from `in_path` (each file has
/// exactly one writer and one reader, so plain appends + positional reads
/// are race-free). recv_some treats "no new bytes" as kTimeout while the
/// peer process is alive and as kClosed once it is gone (peer pid 0 =
/// unknown peer, never reported closed).
class FileQueueStream final : public ByteStream {
 public:
  FileQueueStream(std::string in_path, std::string out_path, pid_t peer_pid);
  ~FileQueueStream() override;

  FileQueueStream(const FileQueueStream&) = delete;
  FileQueueStream& operator=(const FileQueueStream&) = delete;

  void send(const void* data, std::size_t size) override;
  RecvResult recv_some(void* data, std::size_t max, int timeout_ms) override;

  void set_peer_pid(pid_t pid) { peer_pid_ = pid; }

 private:
  bool peer_alive() const;

  std::string in_path_;
  std::string out_path_;
  pid_t peer_pid_;
  int in_fd_ = -1;   // opened lazily: the peer may not have created it yet
  int out_fd_ = -1;
  std::size_t read_offset_ = 0;
};

/// In-memory ByteStream pair (A's sends are B's receives and vice versa).
/// Thread-safe; used by thread-spawned collectors and the unit tests.
class LoopbackStream final : public ByteStream {
 public:
  /// Two connected endpoints. Destroying either endpoint closes the
  /// connection for the other (recv reports kClosed once drained, send
  /// throws).
  static std::pair<std::unique_ptr<LoopbackStream>,
                   std::unique_ptr<LoopbackStream>>
  make_pair();

  ~LoopbackStream() override;

  void send(const void* data, std::size_t size) override;
  RecvResult recv_some(void* data, std::size_t max, int timeout_ms) override;

  /// Bytes sent by this endpoint not yet received by the peer — what the
  /// back-pressure tests bound.
  std::size_t peer_unread_bytes() const;

 private:
  struct Channel {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::uint8_t> bytes;
    bool writer_alive = true;
    bool reader_alive = true;
  };

  LoopbackStream(std::shared_ptr<Channel> in, std::shared_ptr<Channel> out);

  std::shared_ptr<Channel> in_;   // peer writes here, we read
  std::shared_ptr<Channel> out_;  // we write here, peer reads
};

}  // namespace miras::dist
