#include "dist/wire.h"

#include <chrono>
#include <stdexcept>
#include <string>

namespace miras::dist {

void encode_hello(persist::BinaryWriter& out, const HelloMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kHello));
  out.u32(m.protocol_version);
  out.u32(m.collector_id);
  out.u64(m.config_fingerprint);
}

void encode_weights(persist::BinaryWriter& out, const WeightsMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kWeights));
  out.u64(m.round);
  out.boolean(m.random_actions);
  m.behavior.save_state(out);
}

void encode_assign(persist::BinaryWriter& out, const AssignMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kAssign));
  out.u64(m.round);
  out.u64(m.start_seq);
  out.u64(m.episodes.size());
  for (const core::EpisodeSpec& spec : m.episodes) {
    out.u64(spec.index);
    out.u64(spec.length);
    out.u64(spec.seed);
  }
}

void encode_batch(persist::BinaryWriter& out, const BatchMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kBatch));
  out.u32(m.collector_id);
  out.u64(m.round);
  out.u64(m.batch_seq);
  out.u64(m.episode_index);
  out.u64(m.constraint_violations);
  out.u64(m.transitions.size());
  for (const envmodel::Transition& t : m.transitions) {
    out.vec_f64(t.state);
    out.vec_i32(t.action);
    out.vec_f64(t.next_state);
    out.f64(t.reward);
  }
}

void encode_credit(persist::BinaryWriter& out, const CreditMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kCredit));
  out.u32(m.amount);
}

void encode_heartbeat(persist::BinaryWriter& out, const HeartbeatMsg& m) {
  out.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  out.u32(m.collector_id);
}

void encode_shutdown(persist::BinaryWriter& out) {
  out.u8(static_cast<std::uint8_t>(MsgType::kShutdown));
}

MsgType decode_type(persist::BinaryReader& in) {
  const std::uint8_t type = in.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kShutdown))
    throw std::runtime_error("dist: unknown wire message type " +
                             std::to_string(type));
  return static_cast<MsgType>(type);
}

HelloMsg decode_hello(persist::BinaryReader& in) {
  HelloMsg m;
  m.protocol_version = in.u32();
  m.collector_id = in.u32();
  m.config_fingerprint = in.u64();
  return m;
}

WeightsMsg decode_weights(persist::BinaryReader& in) {
  WeightsMsg m;
  m.round = in.u64();
  m.random_actions = in.boolean();
  m.behavior.restore_state(in);
  return m;
}

AssignMsg decode_assign(persist::BinaryReader& in) {
  AssignMsg m;
  m.round = in.u64();
  m.start_seq = in.u64();
  const std::uint64_t count = in.u64();
  m.episodes.resize(static_cast<std::size_t>(count));
  for (core::EpisodeSpec& spec : m.episodes) {
    spec.index = static_cast<std::size_t>(in.u64());
    spec.length = static_cast<std::size_t>(in.u64());
    spec.seed = in.u64();
  }
  return m;
}

CreditMsg decode_credit(persist::BinaryReader& in) {
  CreditMsg m;
  m.amount = in.u32();
  return m;
}

HeartbeatMsg decode_heartbeat(persist::BinaryReader& in) {
  HeartbeatMsg m;
  m.collector_id = in.u32();
  return m;
}

void decode_batch_into(persist::BinaryReader& in, BatchMsg& out) {
  out.collector_id = in.u32();
  out.round = in.u64();
  out.batch_seq = in.u64();
  out.episode_index = in.u64();
  out.constraint_violations = in.u64();
  const std::uint64_t count = in.u64();
  // resize keeps existing elements' vector capacity; with a stable episode
  // shape no steady-state allocation happens here.
  out.transitions.resize(static_cast<std::size_t>(count));
  for (envmodel::Transition& t : out.transitions) {
    in.vec_f64_into(t.state);
    in.vec_i32_into(t.action);
    in.vec_f64_into(t.next_state);
    t.reward = in.f64();
  }
}

MessageChannel::MessageChannel(ByteStream* stream) : stream_(stream) {}

void MessageChannel::send_message(const persist::BinaryWriter& payload) {
  frame_.clear();
  persist::append_frame(frame_, payload.bytes().data(), payload.size());
  stream_->send(frame_.data(), frame_.size());
}

RecvStatus MessageChannel::poll_payload(std::vector<std::uint8_t>& payload,
                                        int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (decoder_.next(payload)) return RecvStatus::kData;
    if (decoder_.error() != persist::FrameError::kNone) {
      // A partial frame at end-of-stream is the peer dying mid-send:
      // expected during failure handling, so it closes rather than throws.
      if (closed_ && decoder_.error() == persist::FrameError::kTruncated)
        return RecvStatus::kClosed;
      throw std::runtime_error(
          std::string("dist: corrupted message stream: ") +
          persist::frame_error_name(decoder_.error()));
    }
    if (closed_) return RecvStatus::kClosed;

    const auto now = std::chrono::steady_clock::now();
    const int remaining =
        now >= deadline
            ? 0
            : static_cast<int>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count());
    std::uint8_t chunk[4096];
    const RecvResult r = stream_->recv_some(chunk, sizeof chunk, remaining);
    if (r.status == RecvStatus::kData) {
      decoder_.feed(chunk, r.bytes);
      continue;
    }
    if (r.status == RecvStatus::kClosed) {
      closed_ = true;
      decoder_.finish();
      continue;  // drain buffered frames (and classify any tail) above
    }
    if (now >= deadline) return RecvStatus::kTimeout;
  }
}

}  // namespace miras::dist
