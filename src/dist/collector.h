// The collector side of the distributed actor-learner topology: a protocol
// loop that announces itself (Hello), receives behaviour snapshots and
// episode assignments, runs the episodes through the shared seed-sharded
// runner (core/collection.h), and streams each result back as one Batch —
// but only while it holds credit, so a stalled learner bounds the bytes in
// flight. Runs identically in a forked process (FdStream/FileQueueStream)
// or a thread (LoopbackStream); determinism comes from the episode specs,
// never from where the loop runs.
#pragma once

#include <cstdint>

#include "core/collection.h"
#include "core/trainer_config.h"
#include "dist/transport.h"

namespace miras::dist {

struct CollectorOptions {
  std::uint32_t collector_id = 0;
  /// Must equal config_fingerprint(config) of the learner's run.
  std::uint64_t config_fingerprint = 0;
  /// Idle receive timeout; a Heartbeat is sent each time it expires.
  int idle_timeout_ms = 200;
  /// Exit (for tests) after sending this many batches, simulating a
  /// collector death at a batch boundary. 0 = run normally.
  std::size_t die_after_batches = 0;
};

/// Runs the collector protocol loop over `stream` until a Shutdown message
/// arrives or the stream closes (learner gone). Throws on protocol
/// corruption. `config` and `make_env` must match the learner's run.
void run_collector(ByteStream& stream, const core::MirasConfig& config,
                   const core::EnvFactory& make_env,
                   const CollectorOptions& options);

}  // namespace miras::dist
