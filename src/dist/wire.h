// Typed message layer of the distributed actor-learner protocol, encoded
// with the persist binary primitives and carried as CRC-checked frames
// (persist/frame_stream.h) over any ByteStream transport.
//
// Message flow (learner <-> collector k):
//
//   collector -> learner   Hello      protocol version, id, config fingerprint
//   learner   -> collector Weights    round, behaviour snapshot to act with
//   learner   -> collector Assign     round, episode specs, starting batch_seq
//   learner   -> collector Credit     in-flight batch allowance (+n)
//   collector -> learner   Batch      (collector_id, batch_seq): one episode
//   collector -> learner   Heartbeat  liveness while idle
//   learner   -> collector Shutdown   clean exit
//
// A collector may send a Batch only while it holds credit; the learner
// grants one credit back per batch it folds. That bounds bytes in flight
// per collector to credit × batch size, so a stalled learner back-pressures
// collectors instead of buffering without limit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/collection.h"
#include "dist/transport.h"
#include "envmodel/dataset.h"
#include "persist/binary_io.h"
#include "persist/frame_stream.h"
#include "rl/ddpg.h"

namespace miras::dist {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kWeights = 2,
  kAssign = 3,
  kBatch = 4,
  kCredit = 5,
  kHeartbeat = 6,
  kShutdown = 7,
};

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t collector_id = 0;
  /// config_fingerprint(MirasConfig) of the collector's config; the
  /// learner refuses a collector built from a different config outright —
  /// mixed-config episodes would silently break bit-identity.
  std::uint64_t config_fingerprint = 0;
};

struct WeightsMsg {
  /// Collection-phase counter; Assign/Batch round fields must match.
  std::uint64_t round = 0;
  bool random_actions = false;
  rl::BehaviorSnapshot behavior;
};

struct AssignMsg {
  std::uint64_t round = 0;
  /// First batch_seq this assignment produces. 0 on the initial assignment;
  /// a respawned collector resumes where its predecessor's *folded* batches
  /// ended, keeping the (collector_id, batch_seq) key sequence gapless.
  std::uint64_t start_seq = 0;
  std::vector<core::EpisodeSpec> episodes;
};

struct BatchMsg {
  std::uint32_t collector_id = 0;
  std::uint64_t round = 0;
  std::uint64_t batch_seq = 0;
  std::uint64_t episode_index = 0;
  std::uint64_t constraint_violations = 0;
  std::vector<envmodel::Transition> transitions;
};

struct CreditMsg {
  std::uint32_t amount = 0;
};

struct HeartbeatMsg {
  std::uint32_t collector_id = 0;
};

/// Encoders append [type u8][body] to `out`.
void encode_hello(persist::BinaryWriter& out, const HelloMsg& m);
void encode_weights(persist::BinaryWriter& out, const WeightsMsg& m);
void encode_assign(persist::BinaryWriter& out, const AssignMsg& m);
void encode_batch(persist::BinaryWriter& out, const BatchMsg& m);
void encode_credit(persist::BinaryWriter& out, const CreditMsg& m);
void encode_heartbeat(persist::BinaryWriter& out, const HeartbeatMsg& m);
void encode_shutdown(persist::BinaryWriter& out);

/// Reads the leading type byte (throws on an unknown type).
MsgType decode_type(persist::BinaryReader& in);

/// Body decoders; call after decode_type() identified the message.
HelloMsg decode_hello(persist::BinaryReader& in);
WeightsMsg decode_weights(persist::BinaryReader& in);
AssignMsg decode_assign(persist::BinaryReader& in);
CreditMsg decode_credit(persist::BinaryReader& in);
HeartbeatMsg decode_heartbeat(persist::BinaryReader& in);

/// Batch decoding into a reused message: transition vectors keep their
/// capacity across calls, so the learner's steady-state ingest of
/// same-shaped batches allocates nothing.
void decode_batch_into(persist::BinaryReader& in, BatchMsg& out);

/// Framing + scratch-buffer glue over one ByteStream. send_message frames
/// an encoded payload (reusing the frame scratch); poll_payload feeds
/// received bytes through a FrameDecoder and yields one message payload at
/// a time. A corrupted frame (bad magic/CRC/length) throws — on this
/// protocol's point-to-point streams corruption means a broken peer, which
/// the learner handles like a death.
class MessageChannel {
 public:
  explicit MessageChannel(ByteStream* stream);

  /// Frames and sends `payload.bytes()`.
  void send_message(const persist::BinaryWriter& payload);

  /// Returns kData with one payload, kTimeout after `timeout_ms` with no
  /// complete frame, or kClosed once the stream ended and every buffered
  /// complete frame was consumed (a trailing partial frame is discarded —
  /// the peer died mid-send).
  RecvStatus poll_payload(std::vector<std::uint8_t>& payload, int timeout_ms);

  std::size_t buffered_bytes() const { return decoder_.buffered_bytes(); }

 private:
  ByteStream* stream_;
  persist::FrameDecoder decoder_;
  std::vector<std::uint8_t> frame_;
  bool closed_ = false;
};

}  // namespace miras::dist
