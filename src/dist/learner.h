// Learner side of the distributed actor-learner topology: a CollectorPool
// is the core::CollectionBackend that fans one collection phase's fixed
// episode schedule out to N collectors and folds their Batch messages back
// in deterministic merge order.
//
// Determinism contract: episodes are assigned round-robin by schedule
// position (spec i goes to collector i % N, its batch_seq is its position
// within that collector's list), batches are validated against the
// expected (collector_id, batch_seq) key, and results land in slots keyed
// by episode index — so arrival timing, transport, collector count effects
// on interleaving, and even a mid-run collector death followed by a
// respawn can never reach the training state. The result equals the
// in-process sharded engine's, bit for bit.
//
// Failure handling: any message refreshes a collector's liveness; a
// heartbeat-silent, closed, or corrupted-stream collector is declared dead,
// its process (if any) reaped, and the SpawnFn is invoked again — the
// replacement re-handshakes and is assigned exactly the episodes whose
// batches have not been folded yet, with start_seq continuing the folded
// prefix, so the merge key sequence stays gapless.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "core/trainer_config.h"
#include "dist/transport.h"
#include "dist/wire.h"

namespace miras::dist {

/// One spawned collector as seen by the learner. Exactly one of pid/thread
/// is meaningful: fork-based spawners set pid, thread-based ones the thread.
struct Endpoint {
  std::unique_ptr<ByteStream> stream;
  pid_t pid = 0;
  std::thread thread;
};

/// Spawns (or respawns) collector `collector_id` and returns the learner's
/// end of its stream. Called once per collector up front and again after
/// each death; respawns must produce a fresh conversation (e.g. new spool
/// files for the file transport).
using SpawnFn = std::function<Endpoint(std::uint32_t collector_id)>;

struct PoolOptions {
  std::size_t collectors = 1;
  /// In-flight batch allowance per collector (>=1); bounds a stalled
  /// learner's buffered bytes to credit × batch size per collector.
  std::size_t credit = 2;
  /// Silence threshold after which a collector is declared dead.
  int heartbeat_timeout_ms = 10000;
  /// Handshake validation: collectors advertising a different fingerprint
  /// are refused (throws — a config mismatch is never survivable).
  std::uint64_t config_fingerprint = 0;
  /// Chaos knob for the kill-mid-run smoke test: once the pool has folded
  /// this many batches in total, SIGKILL collector 0's process (once).
  /// 0 = off. Ignored for thread endpoints.
  std::size_t kill_collector_after = 0;
};

class CollectorPool final : public core::CollectionBackend {
 public:
  /// Spawns all collectors eagerly. Construct fork-based pools while the
  /// process is still single-threaded (before any ThreadPool exists).
  CollectorPool(PoolOptions options, SpawnFn spawn);
  ~CollectorPool() override;

  CollectorPool(const CollectorPool&) = delete;
  CollectorPool& operator=(const CollectorPool&) = delete;

  /// Executes one collection phase across the pool. Blocks until every
  /// episode's batch has been folded; survives collector deaths by
  /// respawning. Results are returned in specs order.
  std::vector<core::CollectedEpisode> collect(
      const std::vector<core::EpisodeSpec>& specs, bool random_actions,
      const rl::BehaviorSnapshot& behavior) override;

  /// Sends Shutdown to every collector and reaps processes/joins threads.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Collectors respawned over the pool's lifetime (tests/diagnostics).
  std::size_t respawn_count() const { return respawns_; }

 private:
  struct Slot {
    Endpoint endpoint;
    std::unique_ptr<MessageChannel> channel;
    bool hello_done = false;
    std::chrono::steady_clock::time_point last_seen;
    /// Schedule positions (into the current specs) owned by this collector,
    /// in assignment order — position j maps to batch_seq j.
    std::vector<std::size_t> assigned;
    /// Batches folded from this collector id in the current round ==
    /// the next expected batch_seq.
    std::uint64_t folded = 0;
  };

  void spawn_slot(std::size_t k);
  void reap_slot(Slot& slot);
  /// Completes the Hello handshake (waits for it if necessary).
  void await_hello(std::size_t k);
  /// Sends Weights + the slot's unfolded episodes + credit for the current
  /// round (used both at round start and after a respawn).
  void send_round_state(std::size_t k,
                        const std::vector<core::EpisodeSpec>& specs,
                        const persist::BinaryWriter& weights_payload);
  /// Declares collector k dead, respawns it, and re-sends round state.
  void recover_slot(std::size_t k,
                    const std::vector<core::EpisodeSpec>& specs,
                    const persist::BinaryWriter& weights_payload);

  PoolOptions options_;
  SpawnFn spawn_;
  std::vector<Slot> slots_;
  std::uint64_t round_ = 0;
  std::size_t respawns_ = 0;
  bool chaos_fired_ = false;
  bool shut_down_ = false;

  // Per-round fold state (valid inside collect()).
  std::vector<core::CollectedEpisode> results_;
  std::vector<bool> have_;
  std::size_t pending_ = 0;
  std::size_t total_folded_ = 0;
  BatchMsg batch_scratch_;  // decode target reused across every batch
};

/// Spawner factories. All collectors run the same (config, make_env) as
/// the learner; `fingerprint` must be config_fingerprint(config).
///
/// Thread spawner: collector loops run as in-process threads over loopback
/// streams — no fork, TSan-friendly, the default for tests.
SpawnFn make_thread_spawner(core::MirasConfig config,
                            core::EnvFactory make_env,
                            std::uint64_t fingerprint,
                            std::size_t first_spawn_dies_after = 0);

/// Fork spawner over socketpairs. Fork before creating any ThreadPool.
SpawnFn make_fork_pipe_spawner(core::MirasConfig config,
                               core::EnvFactory make_env,
                               std::uint64_t fingerprint);

/// Fork spawner over append-only spool files in `spool_dir` (created if
/// missing). Each (re)spawn opens a fresh pair of spool files, so a killed
/// collector's torn tail never corrupts its successor's stream.
SpawnFn make_fork_file_spawner(std::string spool_dir,
                               core::MirasConfig config,
                               core::EnvFactory make_env,
                               std::uint64_t fingerprint);

}  // namespace miras::dist
