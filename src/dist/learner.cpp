#include "dist/learner.h"

#include <errno.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/contracts.h"
#include "common/logging.h"
#include "dist/collector.h"

namespace miras::dist {

namespace {
/// Per-endpoint receive timeout while the pool multiplexes over its slots;
/// small so one silent collector cannot starve the others' folds.
constexpr int kSliceTimeoutMs = 20;
}  // namespace

CollectorPool::CollectorPool(PoolOptions options, SpawnFn spawn)
    : options_(std::move(options)), spawn_(std::move(spawn)) {
  MIRAS_EXPECTS(options_.collectors >= 1);
  MIRAS_EXPECTS(options_.credit >= 1);
  MIRAS_EXPECTS(spawn_ != nullptr);
  slots_.resize(options_.collectors);
  for (std::size_t k = 0; k < slots_.size(); ++k) spawn_slot(k);
}

CollectorPool::~CollectorPool() { shutdown(); }

void CollectorPool::spawn_slot(std::size_t k) {
  Slot& slot = slots_[k];
  slot.endpoint = spawn_(static_cast<std::uint32_t>(k));
  MIRAS_EXPECTS(slot.endpoint.stream != nullptr);
  slot.channel = std::make_unique<MessageChannel>(slot.endpoint.stream.get());
  slot.hello_done = false;
  slot.last_seen = std::chrono::steady_clock::now();
}

void CollectorPool::reap_slot(Slot& slot) {
  // Drop our stream end first: a live thread collector then sees kClosed
  // and exits its loop, making the join below safe.
  slot.channel.reset();
  slot.endpoint.stream.reset();
  if (slot.endpoint.pid > 0) {
    // The collector may be alive (stalled) rather than dead — make sure.
    ::kill(slot.endpoint.pid, SIGKILL);
    int status = 0;
    while (::waitpid(slot.endpoint.pid, &status, 0) < 0 && errno == EINTR) {
    }
    slot.endpoint.pid = 0;
  }
  if (slot.endpoint.thread.joinable()) slot.endpoint.thread.join();
}

void CollectorPool::await_hello(std::size_t k) {
  Slot& slot = slots_[k];
  if (slot.hello_done) return;
  std::vector<std::uint8_t> payload;
  const RecvStatus status =
      slot.channel->poll_payload(payload, options_.heartbeat_timeout_ms);
  if (status != RecvStatus::kData)
    throw std::runtime_error("dist: collector " + std::to_string(k) +
                             " never sent Hello");
  persist::BinaryReader in(payload.data(), payload.size(), "hello message");
  if (decode_type(in) != MsgType::kHello)
    throw std::runtime_error("dist: collector " + std::to_string(k) +
                             " spoke before Hello");
  const HelloMsg hello = decode_hello(in);
  in.expect_end();
  if (hello.protocol_version != kProtocolVersion)
    throw std::runtime_error(
        "dist: collector protocol version mismatch (got " +
        std::to_string(hello.protocol_version) + ", want " +
        std::to_string(kProtocolVersion) + ")");
  if (hello.collector_id != static_cast<std::uint32_t>(k))
    throw std::runtime_error("dist: collector id mismatch in Hello");
  if (hello.config_fingerprint != options_.config_fingerprint)
    throw std::runtime_error(
        "dist: collector config fingerprint mismatch — collectors must be "
        "built from the learner's exact MirasConfig");
  slot.hello_done = true;
  slot.last_seen = std::chrono::steady_clock::now();
}

void CollectorPool::send_round_state(
    std::size_t k, const std::vector<core::EpisodeSpec>& specs,
    const persist::BinaryWriter& weights_payload) {
  Slot& slot = slots_[k];
  await_hello(k);
  slot.channel->send_message(weights_payload);

  AssignMsg assign;
  assign.round = round_;
  assign.start_seq = slot.folded;
  for (const std::size_t pos : slot.assigned) {
    if (!have_[pos]) assign.episodes.push_back(specs[pos]);
  }
  persist::BinaryWriter assign_payload;
  encode_assign(assign_payload, assign);
  slot.channel->send_message(assign_payload);

  persist::BinaryWriter credit_payload;
  encode_credit(credit_payload,
                CreditMsg{static_cast<std::uint32_t>(options_.credit)});
  slot.channel->send_message(credit_payload);
}

void CollectorPool::recover_slot(
    std::size_t k, const std::vector<core::EpisodeSpec>& specs,
    const persist::BinaryWriter& weights_payload) {
  log_warn("dist: collector ", k, " lost — respawning (folded ",
           slots_[k].folded, " of ", slots_[k].assigned.size(),
           " assigned batches this round)");
  reap_slot(slots_[k]);
  spawn_slot(k);
  ++respawns_;
  // The replacement resumes at start_seq == folded with exactly the
  // unfolded episodes, so the (collector_id, batch_seq) merge keys continue
  // the folded prefix without gaps or repeats.
  send_round_state(k, specs, weights_payload);
}

std::vector<core::CollectedEpisode> CollectorPool::collect(
    const std::vector<core::EpisodeSpec>& specs, bool random_actions,
    const rl::BehaviorSnapshot& behavior) {
  MIRAS_EXPECTS(!shut_down_);
  ++round_;
  results_.assign(specs.size(), core::CollectedEpisode{});
  have_.assign(specs.size(), false);
  pending_ = specs.size();
  if (pending_ == 0) return std::move(results_);

  // Fixed round-robin assignment by schedule position: a pure function of
  // (|specs|, collectors), independent of timing.
  for (Slot& slot : slots_) {
    slot.assigned.clear();
    slot.folded = 0;
  }
  for (std::size_t i = 0; i < specs.size(); ++i)
    slots_[i % slots_.size()].assigned.push_back(i);

  // One Weights encoding serves every collector (and every respawn).
  WeightsMsg weights;
  weights.round = round_;
  weights.random_actions = random_actions;
  weights.behavior = behavior;
  persist::BinaryWriter weights_payload;
  encode_weights(weights_payload, weights);

  for (std::size_t k = 0; k < slots_.size(); ++k) {
    try {
      send_round_state(k, specs, weights_payload);
    } catch (const std::runtime_error& error) {
      // A collector that died between rounds (or a handshake that broke)
      // is recovered exactly like a mid-round death. recover_slot retries
      // once; a second failure is fatal.
      log_warn("dist: collector ", k, " unreachable at round start: ",
               error.what());
      recover_slot(k, specs, weights_payload);
    }
  }

  std::vector<std::uint8_t> payload;
  while (pending_ > 0) {
    for (std::size_t k = 0; k < slots_.size() && pending_ > 0; ++k) {
      Slot& slot = slots_[k];
      if (slot.folded == slot.assigned.size()) continue;  // done this round

      RecvStatus status;
      try {
        status = slot.channel->poll_payload(payload, kSliceTimeoutMs);
      } catch (const std::runtime_error& error) {
        // Corrupted stream: indistinguishable from a broken collector.
        log_warn("dist: collector ", k, " stream error: ", error.what());
        recover_slot(k, specs, weights_payload);
        continue;
      }
      if (status == RecvStatus::kClosed) {
        recover_slot(k, specs, weights_payload);
        continue;
      }
      if (status == RecvStatus::kTimeout) {
        const auto silence = std::chrono::steady_clock::now() - slot.last_seen;
        if (silence > std::chrono::milliseconds(options_.heartbeat_timeout_ms))
          recover_slot(k, specs, weights_payload);
        continue;
      }

      slot.last_seen = std::chrono::steady_clock::now();
      persist::BinaryReader in(payload.data(), payload.size(),
                               "collector batch stream");
      const MsgType type = decode_type(in);
      if (type == MsgType::kHeartbeat) {
        decode_heartbeat(in);
        in.expect_end();
        continue;
      }
      if (type != MsgType::kBatch)
        throw std::runtime_error(
            "dist: unexpected message type from collector " +
            std::to_string(k));

      decode_batch_into(in, batch_scratch_);
      in.expect_end();
      const BatchMsg& batch = batch_scratch_;
      if (batch.round != round_) continue;  // stale leftover: drop
      if (batch.collector_id != static_cast<std::uint32_t>(k) ||
          batch.batch_seq != slot.folded)
        throw std::runtime_error(
            "dist: merge key violation from collector " + std::to_string(k) +
            " (got seq " + std::to_string(batch.batch_seq) + ", expected " +
            std::to_string(slot.folded) + ")");
      // batch_seq folded counts from the round's start; the episode it
      // carries is the folded-th assigned episode by construction.
      const std::size_t pos =
          slot.assigned[static_cast<std::size_t>(batch.batch_seq)];
      MIRAS_EXPECTS(specs[pos].index == batch.episode_index);
      MIRAS_EXPECTS(!have_[pos]);
      core::CollectedEpisode& episode = results_[pos];
      episode.index = batch.episode_index;
      episode.constraint_violations =
          static_cast<std::size_t>(batch.constraint_violations);
      episode.transitions = batch.transitions;
      have_[pos] = true;
      ++slot.folded;
      --pending_;
      ++total_folded_;

      persist::BinaryWriter credit_payload;
      encode_credit(credit_payload, CreditMsg{1});
      try {
        slot.channel->send_message(credit_payload);
      } catch (const std::runtime_error& error) {
        // The collector died right after this batch (which folded fine). If
        // it still owes episodes this round, recover now; otherwise the
        // next round's send_round_state notices and recovers it there.
        if (slot.folded < slot.assigned.size()) {
          log_warn("dist: collector ", k,
                   " gone at credit grant: ", error.what());
          recover_slot(k, specs, weights_payload);
        }
        continue;
      }

      if (options_.kill_collector_after != 0 && !chaos_fired_ &&
          total_folded_ >= options_.kill_collector_after &&
          slots_[0].endpoint.pid > 0) {
        chaos_fired_ = true;
        log_warn("dist: chaos knob firing — SIGKILL collector 0");
        ::kill(slots_[0].endpoint.pid, SIGKILL);
      }
    }
  }
  return std::move(results_);
}

void CollectorPool::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  persist::BinaryWriter payload;
  encode_shutdown(payload);
  for (Slot& slot : slots_) {
    if (slot.channel != nullptr) {
      try {
        slot.channel->send_message(payload);
      } catch (const std::runtime_error&) {
        // Peer already gone; reap below regardless.
      }
    }
    reap_slot(slot);
  }
}

// ------------------------------------------------------------- spawners

SpawnFn make_thread_spawner(core::MirasConfig config,
                            core::EnvFactory make_env,
                            std::uint64_t fingerprint,
                            std::size_t first_spawn_dies_after) {
  // Shared counter so the simulated death fires on the *first* spawn of
  // collector 0 only; the respawn runs a normal collector.
  auto spawns = std::make_shared<std::atomic<std::size_t>>(0);
  return [config = std::move(config), make_env = std::move(make_env),
          fingerprint, first_spawn_dies_after,
          spawns](std::uint32_t collector_id) -> Endpoint {
    auto [learner_end, collector_end] = LoopbackStream::make_pair();
    CollectorOptions options;
    options.collector_id = collector_id;
    options.config_fingerprint = fingerprint;
    if (collector_id == 0 && spawns->fetch_add(1) == 0)
      options.die_after_batches = first_spawn_dies_after;
    Endpoint endpoint;
    endpoint.stream = std::move(learner_end);
    endpoint.thread = std::thread(
        [stream = std::shared_ptr<LoopbackStream>(std::move(collector_end)),
         config, make_env, options]() {
          try {
            run_collector(*stream, config, make_env, options);
          } catch (const std::exception& error) {
            log_warn("dist: collector ", options.collector_id,
                     " exited with error: ", error.what());
          }
        });
    return endpoint;
  };
}

namespace {
/// Forks a child running `run_child` and returns in the parent. The child
/// _exits without running atexit handlers or destructors: it shares the
/// parent's address space snapshot, and gtest/sanitizer teardown must not
/// run twice.
pid_t fork_collector(const std::function<void()>& run_child) {
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("dist: fork failed: ") +
                             std::strerror(errno));
  if (pid == 0) {
    try {
      run_child();
    } catch (...) {
    }
    ::_exit(0);
  }
  return pid;
}
}  // namespace

SpawnFn make_fork_pipe_spawner(core::MirasConfig config,
                               core::EnvFactory make_env,
                               std::uint64_t fingerprint) {
  return [config = std::move(config), make_env = std::move(make_env),
          fingerprint](std::uint32_t collector_id) -> Endpoint {
    auto [learner_end, collector_end] = make_socketpair_streams();
    CollectorOptions options;
    options.collector_id = collector_id;
    options.config_fingerprint = fingerprint;
    FdStream* child_stream = collector_end.get();
    FdStream* parent_stream = learner_end.get();
    Endpoint endpoint;
    endpoint.pid = fork_collector([&] {
      parent_stream->close_fds();
      run_collector(*child_stream, config, make_env, options);
    });
    collector_end->close_fds();  // parent's copy of the child's end
    endpoint.stream = std::move(learner_end);
    return endpoint;
  };
}

SpawnFn make_fork_file_spawner(std::string spool_dir,
                               core::MirasConfig config,
                               core::EnvFactory make_env,
                               std::uint64_t fingerprint) {
  ::mkdir(spool_dir.c_str(), 0755);  // best effort; open reports failures
  auto incarnation = std::make_shared<std::atomic<std::size_t>>(0);
  return [spool_dir = std::move(spool_dir), config = std::move(config),
          make_env = std::move(make_env), fingerprint,
          incarnation](std::uint32_t collector_id) -> Endpoint {
    // Fresh spool files per (re)spawn: a killed collector's torn tail must
    // never prefix its successor's stream.
    const std::size_t n = incarnation->fetch_add(1);
    const std::string base = spool_dir + "/c" + std::to_string(collector_id) +
                             "_i" + std::to_string(n);
    const std::string to_learner = base + "_to_learner.q";
    const std::string to_collector = base + "_to_collector.q";
    CollectorOptions options;
    options.collector_id = collector_id;
    options.config_fingerprint = fingerprint;
    const pid_t parent = ::getpid();
    Endpoint endpoint;
    endpoint.pid = fork_collector([&] {
      FileQueueStream stream(to_collector, to_learner, parent);
      run_collector(stream, config, make_env, options);
    });
    endpoint.stream = std::make_unique<FileQueueStream>(
        to_learner, to_collector, endpoint.pid);
    return endpoint;
  };
}

}  // namespace miras::dist
