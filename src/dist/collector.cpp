#include "dist/collector.h"

#include <deque>
#include <optional>
#include <vector>

#include "common/contracts.h"
#include "common/object_pool.h"
#include "dist/wire.h"

namespace miras::dist {

void run_collector(ByteStream& stream, const core::MirasConfig& config,
                   const core::EnvFactory& make_env,
                   const CollectorOptions& options) {
  MIRAS_EXPECTS(make_env != nullptr);
  MessageChannel channel(&stream);

  persist::BinaryWriter hello;
  encode_hello(hello, HelloMsg{kProtocolVersion, options.collector_id,
                               options.config_fingerprint});
  channel.send_message(hello);

  // Idle environments recycled across episodes (reseed() makes the reuse
  // invisible to results, exactly as in the in-process engine).
  common::ObjectPool<sim::Env> env_pool;

  std::optional<WeightsMsg> weights;
  std::deque<core::EpisodeSpec> queue;
  std::uint64_t round = 0;
  std::uint64_t next_seq = 0;
  std::size_t credit = 0;
  std::size_t batches_sent = 0;
  std::vector<std::uint8_t> payload;

  for (;;) {
    // Work while allowed: credit gates every send, so when the learner
    // stalls the loop parks here with at most `credit` batches in flight.
    if (weights && !queue.empty() && credit > 0) {
      const core::EpisodeSpec spec = queue.front();
      queue.pop_front();
      const core::CollectedEpisode episode =
          core::run_shard_episode(spec, weights->random_actions,
                                  weights->behavior, config, make_env,
                                  &env_pool);
      BatchMsg batch;
      batch.collector_id = options.collector_id;
      batch.round = round;
      batch.batch_seq = next_seq++;
      batch.episode_index = episode.index;
      batch.constraint_violations = episode.constraint_violations;
      batch.transitions = episode.transitions;
      persist::BinaryWriter out;
      encode_batch(out, batch);
      channel.send_message(out);
      --credit;
      ++batches_sent;
      if (options.die_after_batches != 0 &&
          batches_sent >= options.die_after_batches)
        return;  // simulated death at a batch boundary (tests)
      continue;
    }

    const RecvStatus status =
        channel.poll_payload(payload, options.idle_timeout_ms);
    if (status == RecvStatus::kClosed) return;  // learner gone
    if (status == RecvStatus::kTimeout) {
      persist::BinaryWriter out;
      encode_heartbeat(out, HeartbeatMsg{options.collector_id});
      channel.send_message(out);
      continue;
    }

    persist::BinaryReader in(payload.data(), payload.size(),
                             "collector message");
    switch (decode_type(in)) {
      case MsgType::kWeights: {
        weights = decode_weights(in);
        round = weights->round;
        // A new round supersedes any stale assignment and credit: the
        // learner re-grants the round's allowance explicitly, keeping the
        // in-flight bound per round instead of accumulating across rounds.
        queue.clear();
        credit = 0;
        break;
      }
      case MsgType::kAssign: {
        AssignMsg assign = decode_assign(in);
        if (!weights || assign.round != round)
          throw std::runtime_error(
              "dist: assignment for a round without matching weights");
        queue.assign(assign.episodes.begin(), assign.episodes.end());
        next_seq = assign.start_seq;
        break;
      }
      case MsgType::kCredit:
        credit += decode_credit(in).amount;
        break;
      case MsgType::kShutdown:
        return;
      case MsgType::kHello:
      case MsgType::kBatch:
      case MsgType::kHeartbeat:
        throw std::runtime_error(
            "dist: learner sent a collector-only message");
    }
    in.expect_end();
  }
}

}  // namespace miras::dist
