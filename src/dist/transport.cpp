#include "dist/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/contracts.h"
#include "persist/frame_stream.h"

namespace miras::dist {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("dist: ") + what + ": " +
                           std::strerror(errno));
}
}  // namespace

// ---------------------------------------------------------------- FdStream

FdStream::FdStream(int read_fd, int write_fd)
    : read_fd_(read_fd), write_fd_(write_fd) {
  MIRAS_EXPECTS(read_fd >= 0 && write_fd >= 0);
  // A collector dying mid-send must surface as an EPIPE error we can turn
  // into a respawn, not a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
}

FdStream::~FdStream() { close_fds(); }

void FdStream::close_fds() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

void FdStream::send(const void* data, std::size_t size) {
  MIRAS_EXPECTS(write_fd_ >= 0);
  persist::write_all_fd(write_fd_, data, size);
}

RecvResult FdStream::recv_some(void* data, std::size_t max, int timeout_ms) {
  MIRAS_EXPECTS(read_fd_ >= 0);
  struct pollfd pfd;
  pfd.fd = read_fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // conservatively re-arm the full wait
      throw_errno("poll failed");
    }
    if (ready == 0) return {RecvStatus::kTimeout, 0};
    break;
  }
  const std::size_t n = persist::read_some_fd(read_fd_, data, max);
  if (n == 0) return {RecvStatus::kClosed, 0};
  return {RecvStatus::kData, n};
}

std::pair<std::unique_ptr<FdStream>, std::unique_ptr<FdStream>>
make_socketpair_streams() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair failed");
  return {std::make_unique<FdStream>(fds[0], fds[0]),
          std::make_unique<FdStream>(fds[1], fds[1])};
}

// --------------------------------------------------------- FileQueueStream

FileQueueStream::FileQueueStream(std::string in_path, std::string out_path,
                                 pid_t peer_pid)
    : in_path_(std::move(in_path)),
      out_path_(std::move(out_path)),
      peer_pid_(peer_pid) {}

FileQueueStream::~FileQueueStream() {
  if (in_fd_ >= 0) ::close(in_fd_);
  if (out_fd_ >= 0) ::close(out_fd_);
}

bool FileQueueStream::peer_alive() const {
  if (peer_pid_ <= 0) return true;  // unknown peer: never declare it dead
  return ::kill(peer_pid_, 0) == 0 || errno != ESRCH;
}

void FileQueueStream::send(const void* data, std::size_t size) {
  if (out_fd_ < 0) {
    out_fd_ = ::open(out_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (out_fd_ < 0) throw_errno("open spool for append failed");
  }
  persist::write_all_fd(out_fd_, data, size);
}

RecvResult FileQueueStream::recv_some(void* data, std::size_t max,
                                      int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    // Liveness is sampled *before* the read: if the peer was already gone
    // and the read that follows still finds nothing, every byte it ever
    // wrote has been drained, so kClosed cannot lose data.
    const bool alive = peer_alive();
    if (in_fd_ < 0) {
      in_fd_ = ::open(in_path_.c_str(), O_RDONLY);
      if (in_fd_ < 0 && errno != ENOENT) throw_errno("open spool failed");
    }
    if (in_fd_ >= 0) {
      if (::lseek(in_fd_, static_cast<off_t>(read_offset_), SEEK_SET) < 0)
        throw_errno("seek spool failed");
      const std::size_t n = persist::read_some_fd(in_fd_, data, max);
      if (n > 0) {
        read_offset_ += n;
        return {RecvStatus::kData, n};
      }
    }
    if (!alive) return {RecvStatus::kClosed, 0};
    if (std::chrono::steady_clock::now() >= deadline)
      return {RecvStatus::kTimeout, 0};
    ::usleep(2000);
  }
}

// ---------------------------------------------------------- LoopbackStream

LoopbackStream::LoopbackStream(std::shared_ptr<Channel> in,
                               std::shared_ptr<Channel> out)
    : in_(std::move(in)), out_(std::move(out)) {}

std::pair<std::unique_ptr<LoopbackStream>, std::unique_ptr<LoopbackStream>>
LoopbackStream::make_pair() {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  auto a = std::unique_ptr<LoopbackStream>(
      new LoopbackStream(b_to_a, a_to_b));
  auto b = std::unique_ptr<LoopbackStream>(
      new LoopbackStream(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

LoopbackStream::~LoopbackStream() {
  {
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->writer_alive = false;
  }
  out_->ready.notify_all();
  {
    std::lock_guard<std::mutex> lock(in_->mutex);
    in_->reader_alive = false;
  }
  in_->ready.notify_all();
}

void LoopbackStream::send(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (!out_->reader_alive)
      throw std::runtime_error("dist: loopback peer is gone");
    out_->bytes.insert(out_->bytes.end(), bytes, bytes + size);
  }
  out_->ready.notify_all();
}

RecvResult LoopbackStream::recv_some(void* data, std::size_t max,
                                     int timeout_ms) {
  std::unique_lock<std::mutex> lock(in_->mutex);
  if (!in_->ready.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
        return !in_->bytes.empty() || !in_->writer_alive;
      })) {
    return {RecvStatus::kTimeout, 0};
  }
  if (in_->bytes.empty()) return {RecvStatus::kClosed, 0};
  const std::size_t n = std::min(max, in_->bytes.size());
  auto* dst = static_cast<std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = in_->bytes.front();
    in_->bytes.pop_front();
  }
  return {RecvStatus::kData, n};
}

std::size_t LoopbackStream::peer_unread_bytes() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->bytes.size();
}

}  // namespace miras::dist
