// LIGO autoscaler: trains MIRAS on the 9-microservice LIGO ensemble and
// replays a large burst, printing the share of consumers given to the
// shared Coire tail stage over time. The paper's §VI-D observation is that
// MIRAS "puts aside certain tasks, e.g., Coire ... at the beginning and
// focuses on other tasks", then returns to drain the Coire queue once
// upstream pressure subsides — the long-term-return behaviour that myopic
// controllers cannot express.
//
// Build & run:   ./build/examples/ligo_autoscaler   (several minutes)
#include <iomanip>
#include <iostream>

#include "core/evaluation.h"
#include "core/miras_agent.h"
#include "sim/system.h"
#include "workflows/ligo.h"

int main() {
  using namespace miras;

  sim::SystemConfig system_config;
  system_config.consumer_budget = workflows::kLigoConsumerBudget;
  system_config.seed = 17;
  sim::MicroserviceSystem system(workflows::make_ligo_ensemble(),
                                 system_config);

  core::MirasConfig config = core::miras_ligo_fast_config();
  config.outer_iterations = 8;
  std::cout << "Training MIRAS on LIGO (" << config.outer_iterations
            << " iterations, 9 task types, budget "
            << workflows::kLigoConsumerBudget << ")...\n";
  core::MirasAgent agent(&system, config);
  for (const auto& trace : agent.train())
    std::cout << "  iteration " << trace.iteration << ": eval reward "
              << trace.eval_aggregate_reward << "\n";

  // Replay the paper's second (largest) LIGO burst and narrate Coire.
  sim::SystemConfig eval_config = system_config;
  eval_config.seed = 555;
  sim::MicroserviceSystem eval_system(workflows::make_ligo_ensemble(),
                                      eval_config);
  auto policy = agent.make_policy();

  std::cout << "\nBurst 150/150/80/50 (DataFind/CAT/Full/Injection):\n";
  std::cout << "win | coire_alloc coire_wip | upstream_alloc total_wip | "
               "completed\n";
  eval_system.reset();
  eval_system.inject_burst(sim::BurstSpec{{150, 150, 80, 50}});
  policy->begin_episode();
  sim::WindowStats last = rl::initial_window_stats(
      eval_system.observe_wip(), eval_system.ensemble().num_workflows(),
      eval_system.ensemble().num_task_types());
  for (int k = 0; k < 40; ++k) {
    const auto allocation =
        policy->decide(last, eval_system.consumer_budget());
    const sim::StepResult result = eval_system.step(allocation);
    int upstream_alloc = 0;
    for (std::size_t j = 0; j < allocation.size(); ++j)
      if (j != workflows::LigoTasks::kCoire)
        upstream_alloc += allocation[j];
    double total_wip = 0.0;
    std::size_t completed = 0;
    for (const double w : result.state) total_wip += w;
    for (const std::size_t c : result.stats.completed) completed += c;
    std::cout << std::setw(3) << k << " | " << std::setw(11)
              << allocation[workflows::LigoTasks::kCoire] << " "
              << std::setw(9)
              << static_cast<int>(result.state[workflows::LigoTasks::kCoire])
              << " | " << std::setw(14) << upstream_alloc << " "
              << std::setw(9) << static_cast<int>(total_wip) << " | "
              << std::setw(9) << completed << "\n";
    last = result.stats;
  }
  std::cout << "\nLook for: small Coire share while upstream queues are\n"
               "loaded, then a larger share once the pipeline drains.\n";
  return 0;
}
