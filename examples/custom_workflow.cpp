// Custom workflow ensemble: shows the public API for defining your own
// task types and workflow DAGs, wiring them into the emulator, and driving
// them with the provided controllers — the path a downstream user takes to
// adapt this library to their own microservice workflow system. No RL
// training involved, so this runs in seconds.
//
// Build & run:   ./build/examples/custom_workflow
#include <iostream>

#include "baselines/drs.h"
#include "baselines/heft.h"
#include "baselines/monad.h"
#include "baselines/simple.h"
#include "core/evaluation.h"
#include "sim/system.h"
#include "workflows/ensemble.h"

int main() {
  using namespace miras;
  using workflows::ServiceTimeModel;

  // --- Define a video-processing ensemble: 5 task types, 2 workflows.
  workflows::Ensemble ensemble("video");
  const auto ingest =
      ensemble.add_task_type("Ingest", ServiceTimeModel::lognormal(1.5, 0.4));
  const auto transcode = ensemble.add_task_type(
      "Transcode", ServiceTimeModel::lognormal(10.0, 0.6));
  const auto thumbnail = ensemble.add_task_type(
      "Thumbnail", ServiceTimeModel::lognormal(2.0, 0.3));
  const auto analyze =
      ensemble.add_task_type("Analyze", ServiceTimeModel::exponential(4.0));
  const auto publish =
      ensemble.add_task_type("Publish", ServiceTimeModel::deterministic(1.0));

  {
    // Full pipeline: Ingest -> (Transcode || Thumbnail) -> Analyze -> Publish.
    workflows::WorkflowGraph wf("FullPipeline");
    const auto a = wf.add_node(ingest);
    const auto b = wf.add_node(transcode);
    const auto c = wf.add_node(thumbnail);
    const auto d = wf.add_node(analyze);
    const auto e = wf.add_node(publish);
    wf.add_edge(a, b);
    wf.add_edge(a, c);
    wf.add_edge(b, d);
    wf.add_edge(c, d);
    wf.add_edge(d, e);
    ensemble.add_workflow(std::move(wf), /*arrival_rate=*/0.08);
  }
  {
    // Re-publish: Analyze -> Publish only.
    workflows::WorkflowGraph wf("Republish");
    const auto a = wf.add_node(analyze);
    const auto b = wf.add_node(publish);
    wf.add_edge(a, b);
    ensemble.add_workflow(std::move(wf), /*arrival_rate=*/0.05);
  }
  ensemble.validate();
  std::cout << "Ensemble '" << ensemble.name() << "': "
            << ensemble.num_task_types() << " task types, "
            << ensemble.num_workflows() << " workflows, offered load "
            << ensemble.offered_load() << " consumer-s/s\n";

  // --- Emulate it with a 12-consumer budget and compare controllers.
  sim::SystemConfig config;
  config.consumer_budget = 12;
  config.seed = 3;

  baselines::DrsPolicy drs(ensemble);
  baselines::HeftPolicy heft(ensemble);
  baselines::MonadPolicy monad(ensemble);
  baselines::ProportionalPolicy proportional(ensemble.num_task_types());
  baselines::UniformPolicy uniform(ensemble.num_task_types());

  const core::ScenarioConfig scenario{sim::BurstSpec{{60, 40}}, 30};
  std::cout << "\nBurst 60/40 + Poisson stream, 30 windows:\n";
  for (rl::Policy* policy : std::initializer_list<rl::Policy*>{
           &drs, &heft, &monad, &proportional, &uniform}) {
    sim::MicroserviceSystem system(ensemble, config);
    const auto trace = core::run_scenario(system, *policy, scenario);
    std::cout << "  " << policy->name()
              << ": aggregate reward = " << trace.aggregate_reward()
              << ", mean RT = " << trace.mean_response_time()
              << " s, final WIP = " << trace.total_wip_series().back() << "\n";
  }
  std::cout << "\nTo train MIRAS on this ensemble, pass the system to\n"
               "core::MirasAgent exactly as examples/quickstart.cpp does.\n";
  return 0;
}
