// Quickstart: the smallest end-to-end MIRAS run.
//
//  1. Build the emulated microservice workflow system for the MSD ensemble.
//  2. Train MIRAS (Algorithm 2) for a few iterations at reduced scale.
//  3. Compare the learnt policy with a uniform allocation on a fresh system.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "baselines/simple.h"
#include "core/evaluation.h"
#include "core/miras_agent.h"
#include "sim/system.h"
#include "workflows/msd.h"

int main() {
  using namespace miras;

  // --- 1. The environment: 3 MSD workflow types over 4 microservices,
  //        14-consumer budget, 30 s control windows.
  sim::SystemConfig system_config;
  system_config.consumer_budget = workflows::kMsdConsumerBudget;
  system_config.seed = 12;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(),
                                 system_config);
  std::cout << "MSD system: " << system.state_dim() << " microservices, "
            << system.ensemble().num_workflows() << " workflow types, budget "
            << system.consumer_budget() << " consumers\n";

  // --- 2. Train MIRAS at a reduced scale (~2 minutes of CPU).
  core::MirasConfig config = core::miras_msd_fast_config();
  config.seed = 22;
  core::MirasAgent agent(&system, config);
  std::cout << "\nTraining (" << config.outer_iterations
            << " iterations of Algorithm 2)...\n";
  for (const core::IterationTrace& trace : agent.train()) {
    std::cout << "  iteration " << trace.iteration << ": dataset "
              << trace.dataset_size << " transitions, eval reward "
              << trace.eval_aggregate_reward << "\n";
  }

  // --- 3. Head-to-head against uniform allocation under a request burst.
  auto miras_policy = agent.make_policy();
  baselines::UniformPolicy uniform(system.state_dim());
  // The paper's first Figure 7 burst: 300/200/300 requests at t = 0.
  const core::ScenarioConfig scenario{sim::BurstSpec{{300, 200, 300}}, 40};

  std::cout << "\nBurst evaluation (300/200/300 requests + Poisson stream, "
               "40 windows):\n";
  for (rl::Policy* policy :
       std::initializer_list<rl::Policy*>{miras_policy.get(), &uniform}) {
    sim::SystemConfig eval_config = system_config;
    eval_config.seed = 1000;  // identical arrivals for both policies
    sim::MicroserviceSystem eval_system(workflows::make_msd_ensemble(),
                                        eval_config);
    const core::EvaluationTrace trace =
        core::run_scenario(eval_system, *policy, scenario);
    std::cout << "  " << policy->name()
              << ": aggregate reward = " << trace.aggregate_reward()
              << ", mean response time = " << trace.mean_response_time()
              << " s, final WIP = " << trace.total_wip_series().back() << "\n";
  }
  std::cout << "\nDone. See bench/fig7_msd_comparison for the full "
               "baseline comparison.\n";
  return 0;
}
