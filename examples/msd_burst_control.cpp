// MSD burst control: watch three controllers (MIRAS, DRS, MONAD) handle the
// same request burst window by window. Prints the per-window allocation and
// WIP so you can see *how* each controller reacts, not just the score —
// DRS's slow arrival estimates, MONAD's immediate but myopic reaction, and
// MIRAS's learnt anticipation of downstream load.
//
// Build & run:   ./build/examples/msd_burst_control
#include <iomanip>
#include <iostream>

#include "baselines/drs.h"
#include "baselines/monad.h"
#include "core/evaluation.h"
#include "core/miras_agent.h"
#include "sim/system.h"
#include "workflows/msd.h"

namespace {

void narrate(const std::string& name, miras::rl::Policy& policy,
             std::uint64_t seed) {
  using namespace miras;
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = seed;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);

  const core::ScenarioConfig scenario{sim::BurstSpec{{150, 100, 150}}, 20};
  std::cout << "\n--- " << name << " under burst (150/100/150)\n";
  std::cout << "win | alloc  In Al Se An | wip    In  Al  Se  An | mean RT\n";

  system.reset();
  system.inject_burst(scenario.burst);
  policy.begin_episode();
  sim::WindowStats last = rl::initial_window_stats(
      system.observe_wip(), system.ensemble().num_workflows(),
      system.ensemble().num_task_types());
  double aggregate = 0.0;
  for (std::size_t k = 0; k < scenario.steps; ++k) {
    const auto allocation = policy.decide(last, system.consumer_budget());
    const sim::StepResult result = system.step(allocation);
    aggregate += result.reward;
    std::cout << std::setw(3) << k << " |       ";
    for (const int m : allocation) std::cout << std::setw(3) << m;
    std::cout << " |     ";
    for (const double w : result.state)
      std::cout << std::setw(4) << static_cast<int>(w);
    std::cout << " | " << std::fixed << std::setprecision(1)
              << result.stats.overall_mean_response_time << " s\n";
    last = result.stats;
  }
  std::cout << name << " aggregate reward: " << aggregate << "\n";
}

}  // namespace

int main() {
  using namespace miras;
  const auto ensemble = workflows::make_msd_ensemble();

  // Train MIRAS at reduced scale first.
  sim::SystemConfig train_config;
  train_config.consumer_budget = workflows::kMsdConsumerBudget;
  train_config.seed = 7;
  sim::MicroserviceSystem train_system(workflows::make_msd_ensemble(),
                                       train_config);
  core::MirasConfig miras_config = core::miras_msd_fast_config();
  miras_config.outer_iterations = 6;
  std::cout << "Training MIRAS (" << miras_config.outer_iterations
            << " iterations)...\n";
  core::MirasAgent agent(&train_system, miras_config);
  agent.train();

  auto miras_policy = agent.make_policy();
  baselines::DrsPolicy drs(ensemble);
  baselines::MonadPolicy monad(ensemble);

  narrate("MIRAS", *miras_policy, 99);
  narrate("DRS (stream)", drs, 99);
  narrate("MONAD (one-step MPC)", monad, 99);
  return 0;
}
