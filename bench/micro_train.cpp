// Microbenchmarks of the deterministic data-parallel training layer
// (google-benchmark): dynamics-model fit epochs and DDPG updates at 1/4/8
// workers. The learned weights are bit-identical at every Arg value — only
// the wall clock moves — and the steady-state sharded paths allocate
// nothing at *every* Arg value (bytes_per_op 0 inline and pooled: the
// pool's `parallel_for` dispatch path is itself allocation-free). Pass
// `--json <path>` to dump {op, ns_per_op, bytes_per_op, iterations} records
// (the BENCH_train.json CI artifact).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "envmodel/dataset.h"
#include "envmodel/dynamics_model.h"
#include "rl/ddpg.h"

namespace miras {
namespace {

constexpr std::size_t kStateDim = 6;
constexpr std::size_t kActionDim = 6;

// Arg(1) exercises the inline path (no pool, the zero-allocation
// reference); Arg(n > 1) attaches an n-worker pool.
std::unique_ptr<common::ThreadPool> make_pool(std::int64_t workers) {
  if (workers <= 1) return nullptr;
  return std::make_unique<common::ThreadPool>(
      static_cast<std::size_t>(workers));
}

// Synthetic mixing dynamics: enough structure that the fit does real work,
// deterministic in the seed.
envmodel::TransitionDataset make_fit_dataset(std::size_t count) {
  envmodel::TransitionDataset data(kStateDim, kActionDim);
  Rng rng(91);
  for (std::size_t i = 0; i < count; ++i) {
    envmodel::Transition t;
    t.state.resize(kStateDim);
    for (double& s : t.state) s = rng.uniform(0.0, 40.0);
    t.action.resize(kActionDim);
    for (int& a : t.action) a = static_cast<int>(rng.uniform_int(0, 4));
    t.next_state.resize(kStateDim);
    for (std::size_t j = 0; j < kStateDim; ++j) {
      const std::size_t k = (j + 1) % kStateDim;
      t.next_state[j] = 0.8 * t.state[j] + 0.15 * t.state[k] -
                        2.0 * t.action[j] + rng.uniform(-0.5, 0.5);
      if (t.next_state[j] < 0.0) t.next_state[j] = 0.0;
    }
    t.reward = -t.state[0];
    data.add(std::move(t));
  }
  return data;
}

// One fit() pass (epochs=1) over a 4096-sample dataset with the paper's
// {20, 20, 20} model at the paper batch size. items = training samples.
void BM_DynamicsFitEpoch(benchmark::State& state) {
  const auto data = make_fit_dataset(4096);
  envmodel::DynamicsModelConfig config;
  config.epochs = 1;
  config.seed = 7;
  envmodel::DynamicsModel model(kStateDim, kActionDim, config);
  const auto pool = make_pool(state.range(0));
  model.enable_parallel_training(pool.get());
  // Warm fit: sizes the design matrices, shuffle buffer, and per-block
  // TrainPass pools so the timed loop runs at steady state.
  model.fit(data);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.fit(data));
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_DynamicsFitEpoch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// One DDPG update (twin critics + delayed actor) with the paper's 3 x 256
// networks at batch 64. items = gradient updates.
void BM_DdpgUpdateSharded(benchmark::State& state) {
  rl::DdpgConfig config;
  config.warmup = 64;
  config.seed = 23;
  rl::DdpgAgent agent(kStateDim, kActionDim, /*consumer_budget=*/12, config);
  const auto pool = make_pool(state.range(0));
  agent.enable_parallel_training(pool.get());
  Rng rng(17);
  std::vector<double> s(kStateDim);
  std::vector<double> s_next(kStateDim);
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t j = 0; j < kStateDim; ++j) {
      s[j] = rng.uniform(0.0, 40.0);
      s_next[j] = rng.uniform(0.0, 40.0);
    }
    const auto action = agent.act(s, /*explore=*/true);
    agent.observe(s, action, rng.uniform(-5.0, 0.0), s_next);
  }
  // Warm updates: size the replay scratch and the per-block TrainPass pools
  // of all three sharded loops (critic, twin critic, actor).
  agent.update(4);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.update(1));
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DdpgUpdateSharded)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  return miras::bench::run_benchmarks(argc, argv);
}
