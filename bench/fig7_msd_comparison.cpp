// Figure 7: MSD performance comparison under burst workloads (§VI-D).
//
// Bursts fed at evaluation start (on top of the Poisson stream):
//   (a) 300/200/300, (b) 1000/300/400, (c) 500/500/500 requests for
// workflow Type1..Type3. Policies: MIRAS, DRS ("stream"), HEFT-adapted,
// MONAD, and model-free DDPG ("rl") trained with the same number of real
// interactions. The paper's headline: MIRAS is better than or at least as
// good as the others, especially in long-term returns.
#include "comparison.h"
#include "workflows/msd.h"

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  bench::ComparisonSetup setup;
  setup.name = "Figure 7 (MSD)";
  setup.make_ensemble = [] { return workflows::make_msd_ensemble(); };
  setup.budget = workflows::kMsdConsumerBudget;
  setup.miras_config =
      options.full ? core::miras_msd_config() : core::miras_msd_fast_config();
  setup.miras_config.seed = options.seed + 21;
  setup.bursts = {{"burst (300,200,300)", sim::BurstSpec{{300, 200, 300}}},
                  {"burst (1000,300,400)", sim::BurstSpec{{1000, 300, 400}}},
                  {"burst (500,500,500)", sim::BurstSpec{{500, 500, 500}}}};
  setup.steps = 40;
  bench::run_comparison(setup, options);
  return 0;
}
