// Shared driver for the Figure 7/8 comparison benches: trains MIRAS and the
// model-free DDPG comparator (same number of real interactions, §VI-D),
// instantiates the DRS/HEFT/MONAD baselines, and replays every burst
// scenario against identically-seeded systems.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/drs.h"
#include "baselines/heft.h"
#include "baselines/monad.h"
#include "bench_util.h"
#include "core/miras_agent.h"
#include "core/trainer_config.h"

namespace miras::bench {

struct ComparisonSetup {
  std::string name;
  std::function<workflows::Ensemble()> make_ensemble;
  int budget = 0;
  core::MirasConfig miras_config;
  /// (label, burst) scenarios; the paper feeds each burst at evaluation
  /// start on top of the steady Poisson stream.
  std::vector<std::pair<std::string, sim::BurstSpec>> bursts;
  std::size_t steps = 40;
};

inline void run_comparison(const ComparisonSetup& setup,
                           const BenchOptions& options) {
  const workflows::Ensemble ensemble = setup.make_ensemble();

  // --- Train MIRAS.
  sim::SystemConfig train_config;
  train_config.consumer_budget = setup.budget;
  train_config.seed = options.seed + 11;
  sim::MicroserviceSystem train_system(setup.make_ensemble(), train_config);
  std::cout << "\n=== " << setup.name << ": training MIRAS ("
            << setup.miras_config.outer_iterations << " iterations x "
            << setup.miras_config.real_steps_per_iteration
            << " real steps)\n";
  core::MirasAgent miras(&train_system, setup.miras_config);
  const auto traces = miras.train();
  std::cout << "MIRAS final eval aggregated reward: "
            << format_double(traces.back().eval_aggregate_reward, 1) << "\n";
  auto miras_policy = miras.make_policy();

  // --- Train the model-free comparator with the same real-step budget.
  const std::size_t total_real_steps =
      setup.miras_config.outer_iterations *
      setup.miras_config.real_steps_per_iteration;
  std::cout << "training model-free DDPG (same " << total_real_steps
            << " real interactions)\n";
  sim::SystemConfig mf_config = train_config;
  mf_config.seed = options.seed + 12;
  sim::MicroserviceSystem mf_system(setup.make_ensemble(), mf_config);
  core::ModelFreeConfig model_free;
  model_free.ddpg = setup.miras_config.ddpg;
  model_free.total_steps = total_real_steps;
  model_free.reset_interval = setup.miras_config.reset_interval;
  rl::DdpgAgent mf_agent = core::train_model_free_ddpg(mf_system, model_free);
  core::DdpgPolicy rl_policy(&mf_agent, "rl");

  // --- Baselines ("stream" is the paper's label for DRS).
  baselines::DrsPolicy drs(ensemble);
  baselines::HeftPolicy heft(ensemble);
  baselines::MonadPolicy monad(ensemble);

  const std::vector<PolicyEntry> policies{{"miras", miras_policy.get()},
                                          {"stream", &drs},
                                          {"heft", &heft},
                                          {"monad", &monad},
                                          {"rl", &rl_policy}};

  for (const auto& [label, burst] : setup.bursts) {
    auto make_system = [&] {
      sim::SystemConfig eval_config;
      eval_config.consumer_budget = setup.budget;
      eval_config.seed = options.seed + 999;  // same arrivals for everyone
      return sim::MicroserviceSystem(setup.make_ensemble(), eval_config);
    };
    const auto eval_traces = run_policies(
        make_system, policies, core::ScenarioConfig{burst, setup.steps});
    emit(response_time_table(eval_traces), options,
         setup.name + " " + label + " — mean response time per window (s)");
    emit(summary_table(eval_traces, setup.steps / 4), options,
         setup.name + " " + label + " — summary");
  }
}

}  // namespace miras::bench
