// Shared driver for the Figure 7/8 comparison benches: trains MIRAS and the
// model-free DDPG comparator (same number of real interactions, §VI-D),
// instantiates the DRS/HEFT/MONAD baselines, and replays every burst
// scenario against identically-seeded systems.
//
// With --threads N the two trainings run concurrently, MIRAS collects its
// real episodes and synthetic rollouts on the pool (seed-sharded), and the
// evaluation grid runs one cell per (scenario, policy) on the pool. The
// result tables are byte-identical for every thread count: parallel work is
// decomposed into seed-sharded units merged in index order, never by
// completion order.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/drs.h"
#include "baselines/heft.h"
#include "baselines/monad.h"
#include "bench_util.h"
#include "core/miras_agent.h"
#include "core/trainer_config.h"

namespace miras::bench {

struct ComparisonSetup {
  std::string name;
  std::function<workflows::Ensemble()> make_ensemble;
  int budget = 0;
  core::MirasConfig miras_config;
  /// (label, burst) scenarios; the paper feeds each burst at evaluation
  /// start on top of the steady Poisson stream.
  std::vector<std::pair<std::string, sim::BurstSpec>> bursts;
  std::size_t steps = 40;
};

inline void run_comparison(const ComparisonSetup& setup,
                           const BenchOptions& options) {
  const workflows::Ensemble ensemble = setup.make_ensemble();
  const std::unique_ptr<common::ThreadPool> pool = make_pool(options);

  auto make_eval_system = [&setup](std::uint64_t seed) {
    sim::SystemConfig config;
    config.consumer_budget = setup.budget;
    config.seed = seed;
    return std::make_unique<sim::MicroserviceSystem>(setup.make_ensemble(),
                                                     config);
  };

  // --- Train MIRAS (on this thread; its episode collection and synthetic
  // rollout generation use the pool when one exists).
  sim::SystemConfig train_config;
  train_config.consumer_budget = setup.budget;
  train_config.seed = options.seed + 11;
  sim::MicroserviceSystem train_system(setup.make_ensemble(), train_config);
  std::cout << "\n=== " << setup.name << ": training MIRAS ("
            << setup.miras_config.outer_iterations << " iterations x "
            << setup.miras_config.real_steps_per_iteration
            << " real steps)\n";
  core::MirasAgent miras(&train_system, setup.miras_config);
  miras.enable_parallel_collection(
      pool.get(), [&setup](std::uint64_t seed) -> std::unique_ptr<sim::Env> {
        sim::SystemConfig config;
        config.consumer_budget = setup.budget;
        config.seed = seed;
        return std::make_unique<sim::MicroserviceSystem>(setup.make_ensemble(),
                                                         config);
      });

  // --- Model-free comparator with the same real-step budget; independent
  // of the MIRAS training, so it overlaps with it on the pool.
  const std::size_t total_real_steps =
      setup.miras_config.outer_iterations *
      setup.miras_config.real_steps_per_iteration;
  sim::SystemConfig mf_config = train_config;
  mf_config.seed = options.seed + 12;
  core::ModelFreeConfig model_free;
  model_free.ddpg = setup.miras_config.ddpg;
  model_free.total_steps = total_real_steps;
  model_free.reset_interval = setup.miras_config.reset_interval;
  auto train_mf = [&setup, mf_config, model_free] {
    sim::MicroserviceSystem mf_system(setup.make_ensemble(), mf_config);
    return core::train_model_free_ddpg(mf_system, model_free);
  };

  std::unique_ptr<rl::DdpgAgent> mf_agent;
  {
    ScopedTimer timer(setup.name + " training", options.threads);
    common::TaskFuture<rl::DdpgAgent> mf_future;
    if (pool != nullptr)
      mf_future = pool->submit(train_mf);  // overlaps with the MIRAS training
    std::vector<core::IterationTrace> traces;
    train_with_checkpoints(
        miras, options, to_lower(setup.name) + "_miras.ckpt",
        [&traces](const core::IterationTrace& trace) {
          traces.push_back(trace);
        });
    if (!traces.empty())
      std::cout << "MIRAS final eval aggregated reward: "
                << format_double(traces.back().eval_aggregate_reward, 1)
                << "\n";
    std::cout << "training model-free DDPG (same " << total_real_steps
              << " real interactions)\n";
    mf_agent = std::make_unique<rl::DdpgAgent>(
        pool != nullptr ? mf_future.get() : train_mf());
  }
  auto miras_policy = miras.make_policy();
  core::DdpgPolicy rl_policy(mf_agent.get(), "rl");

  // --- Evaluation grid: fresh policy instance per cell ("stream" is the
  // paper's label for DRS); the two DDPG policies view their trained agents
  // through the const greedy path, so cells can share them concurrently.
  const std::vector<core::PolicySpec> policies{
      {"miras",
       [&miras] {
         return std::make_unique<core::DdpgPolicy>(&miras.ddpg(), "miras");
       }},
      {"stream",
       [&ensemble] { return std::make_unique<baselines::DrsPolicy>(ensemble); }},
      {"heft",
       [&ensemble] {
         return std::make_unique<baselines::HeftPolicy>(ensemble);
       }},
      {"monad",
       [&ensemble] {
         return std::make_unique<baselines::MonadPolicy>(ensemble);
       }},
      {"rl", [&mf_agent] {
         return std::make_unique<core::DdpgPolicy>(mf_agent.get(), "rl");
       }}};
  std::vector<core::ScenarioSpec> scenarios;
  for (const auto& [label, burst] : setup.bursts)
    scenarios.push_back(
        core::ScenarioSpec{label, core::ScenarioConfig{burst, setup.steps}});

  core::EvaluationHarness harness(make_eval_system, pool.get());
  core::GridResult grid;
  {
    ScopedTimer timer(setup.name + " evaluation grid", options.threads);
    // One replication, seeded identically for every policy and scenario
    // (same arrival trace for everyone).
    grid = harness.run(policies, scenarios, {options.seed + 999},
                       setup.steps / 4);
  }

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    std::vector<core::EvaluationTrace> eval_traces;
    for (std::size_t p = 0; p < policies.size(); ++p)
      eval_traces.push_back(grid.cell(s, p).trace);
    emit(response_time_table(eval_traces), options,
         setup.name + " " + scenarios[s].label +
             " — mean response time per window (s)");
    emit(summary_table(eval_traces, setup.steps / 4), options,
         setup.name + " " + scenarios[s].label + " — summary");
  }
}

}  // namespace miras::bench
