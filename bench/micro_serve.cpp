// Serving-path microbenchmark: decisions/sec and tail latency across
// client counts x admission batch sizes x worker lanes, plus a hot-swap
// arm that proves weight publication drops nothing under load.
//
// Arms (one JSON record each, with --json <path>):
//   SERVE_direct_gemv/clients:{1,8}          every client calls
//       ActorServable::decide directly (single-request GEMV path, no
//       admission queue) through its own DecisionScratch.
//   SERVE_admission/clients:8/max_batch:{1,8,16}   clients go through the
//       BatchServer; max_batch:1 serialises every request into its own
//       pass (the no-coalescing baseline), larger values let the worker
//       batch whatever is queued into one GEMM.
//   SERVE_lanes/clients:16/max_batch:8/lanes:{1,2,4,8}   the lane sweep:
//       the same admission path sharded across N worker lanes (N GEMM
//       streams off one snapshot). Decisions/sec should scale with lanes
//       up to core count; on a 1-CPU box the curve is flat by physics and
//       the `cpus` field says so.
//   SERVE_hotswap/clients:8/max_batch:8/lanes:4   as admission, with a
//       publisher republishing a perturbed snapshot every ~2 ms; reports
//       swaps and dropped (the latter must be 0), and asserts that within
//       every lane's drained telemetry stream the serving version is
//       monotone nondecreasing (a lane may only move forward).
//
// Fields: decisions_per_sec, p50_ns, p99_ns (per-request completion
// latency), bytes_per_op (heap bytes allocated per decision over the
// steady-state measurement window — this TU replaces the global allocator
// to count them; 0 is the contract for the direct, admission, and lane
// arms), served, swaps, dropped, clients, max_batch, lanes, cpus, native.
//
// Like micro_scaling, this harness owns its timing loop (throughput and
// percentiles are cross-thread quantities) and links no google-benchmark.
// The `cpus` field is load-bearing: on a 1-core box the batched-vs-serial
// ratio collapses toward 1 and the lane sweep cannot scale, and the
// artifact must say so. CI floors run on multi-core runners
// (.github/workflows/ci.yml). `--ref <path>` prints decisions/sec against
// a checked-in reference, with the [1-cpu-reference] marker when that
// reference was recorded on a 1-CPU container.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

// This TU installs its own byte-counting allocator and owns its timing
// loop; bench_json.h contributes only the reference-comparison helpers.
#define MIRAS_BENCH_JSON_NO_ALLOC_HOOKS
#define MIRAS_BENCH_JSON_NO_GBENCH
#include "bench_json.h"
#include "common/rng.h"
#include "nn/kernels.h"
#include "rl/ddpg.h"
#include "serve/admission.h"
#include "serve/servable.h"

namespace {
std::atomic<std::uint64_t> g_heap_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace miras::serve {
namespace {

// LIGO-ish state/action widths with 3 x 64 hidden: big enough that a
// decision is real work (thousands of MACs), small enough that the
// admission arms measure queue mechanics (the thing the batched/serial
// ratio floor is about) rather than pure GEMM arithmetic — the kernels get
// their own dedicated coverage in test_kernels and micro_nn. The
// batched/serial ratio is ~(C+O)/(C+O/B) for GEMV cost C and per-pass
// admission overhead O; a smaller C keeps the floor comparison about O.
constexpr std::size_t kStateDim = 24;
constexpr std::size_t kActionDim = 12;
constexpr int kBudget = 40;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ActorSnapshot make_snapshot() {
  rl::DdpgConfig config;
  config.actor_hidden = {64, 64, 64};
  config.critic_hidden = {16, 16};  // critics are dead weight here; keep tiny
  config.seed = 7;
  rl::DdpgAgent agent(kStateDim, kActionDim, kBudget, config);
  Rng rng(55);
  std::vector<double> state(kStateDim);
  for (int i = 0; i < 64; ++i) {
    for (double& s : state) s = rng.uniform(0.0, 400.0);
    agent.observe_state_only(state);
  }
  return ActorSnapshot::from_agent(agent);
}

std::vector<std::vector<double>> make_states(std::size_t count) {
  Rng rng(91);
  std::vector<std::vector<double>> states(count);
  for (auto& s : states) {
    s.resize(kStateDim);
    for (double& v : s) v = rng.uniform(0.0, 600.0);
  }
  return states;
}

struct ArmResult {
  std::string op;
  std::size_t clients = 0;
  std::size_t max_batch = 0;  // 0 = no admission queue (direct arm)
  std::size_t lanes = 0;      // 0 = no admission queue (direct arm)
  double decisions_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double bytes_per_op = 0.0;
  std::uint64_t served = 0;
  std::uint64_t swaps = 0;
  std::uint64_t dropped = 0;
  /// Mean rows per admission pass over the merged telemetry window (0 =
  /// direct arm, no admission queue). The batched/serial throughput ratio
  /// is only meaningful when this actually approaches max_batch.
  double mean_batch = 0.0;
  /// Per-lane serving-version order violations in the drained telemetry
  /// (must be 0: versions may only increase within a lane's stream).
  std::uint64_t version_order_violations = 0;
};

double mean_batch_from(const BatchServer& server) {
  std::vector<TelemetryRecord> records;
  if (server.telemetry_snapshot(records) == 0) return 0.0;
  double rows = 0.0;
  for (const TelemetryRecord& rec : records) rows += rec.batch_size;
  return rows / static_cast<double>(records.size());
}

/// The per-lane serving-version monotonicity contract: a lane re-pins the
/// snapshot only forward, so within one lane's drained record stream the
/// version may never decrease. Returns the number of violations (0 is the
/// contract; counted into the arm's failure path like dropped requests).
std::uint64_t version_monotonicity_violations(const BatchServer& server) {
  std::vector<TelemetryRecord> records;
  std::uint64_t violations = 0;
  for (std::size_t l = 0; l < server.lane_count(); ++l) {
    server.telemetry(l).snapshot(records);
    for (std::size_t i = 1; i < records.size(); ++i)
      if (records[i].snapshot_version < records[i - 1].snapshot_version)
        ++violations;
  }
  return violations;
}

double percentile(std::vector<std::uint64_t>& lat, double q) {
  if (lat.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(lat.size() - 1) + 0.5);
  std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(idx),
                   lat.end());
  return static_cast<double>(lat[idx]);
}

/// Runs `clients` threads against `issue` (one blocking decision per call)
/// for warmup + measure; latencies and counters cover only the measurement
/// window. `issue(client, state) -> void` must be steady-state
/// allocation-free for bytes_per_op to mean anything.
template <typename Issue>
ArmResult run_clients(std::string op, std::size_t clients, double warmup_ms,
                      double measure_ms, const Issue& issue) {
  const auto states = make_states(64);
  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  // Per-client latency buffers, preallocated so recording never allocates
  // inside the measurement window.
  std::vector<std::vector<std::uint64_t>> latencies(clients);
  for (auto& v : latencies) v.reserve(1 << 20);

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& state = states[i % states.size()];
        ++i;
        const std::uint64_t t0 = now_ns();
        issue(c, state);
        const std::uint64_t t1 = now_ns();
        if (measuring.load(std::memory_order_relaxed)) {
          if (latencies[c].size() < latencies[c].capacity())
            latencies[c].push_back(t1 - t0);
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(warmup_ms * 1000)));
  const std::uint64_t bytes_before = g_heap_bytes.load();
  const std::uint64_t t_begin = now_ns();
  measuring = true;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(measure_ms * 1000)));
  measuring = false;
  const std::uint64_t t_end = now_ns();
  const std::uint64_t bytes_after = g_heap_bytes.load();
  stop = true;
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> merged;
  std::size_t total = 0;
  for (const auto& v : latencies) total += v.size();
  merged.reserve(total);
  for (const auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());

  ArmResult r;
  r.op = std::move(op);
  r.clients = clients;
  r.served = ops.load();
  const double secs = static_cast<double>(t_end - t_begin) / 1e9;
  r.decisions_per_sec = secs > 0.0 ? static_cast<double>(r.served) / secs : 0.0;
  r.p50_ns = percentile(merged, 0.50);
  r.p99_ns = percentile(merged, 0.99);
  r.bytes_per_op =
      r.served > 0
          ? static_cast<double>(bytes_after - bytes_before) /
                static_cast<double>(r.served)
          : 0.0;
  return r;
}

ArmResult run_direct(const ActorServable& servable, std::size_t clients,
                     double warmup_ms, double measure_ms) {
  // One scratch + output per client; warmed before the threads start so
  // the steady-state loop is allocation-free.
  std::vector<DecisionScratch> scratch(clients);
  std::vector<std::vector<double>> out(clients);
  const auto warm = make_states(1);
  for (std::size_t c = 0; c < clients; ++c)
    servable.decide(warm[0], scratch[c], out[c]);
  ArmResult r = run_clients(
      "SERVE_direct_gemv/clients:" + std::to_string(clients), clients,
      warmup_ms, measure_ms, [&](std::size_t c, const std::vector<double>& s) {
        servable.decide(s, scratch[c], out[c]);
      });
  return r;
}

ArmResult run_admission(const ActorServable& servable, std::size_t clients,
                        std::size_t max_batch, double warmup_ms,
                        double measure_ms) {
  AdmissionConfig config;
  config.max_batch = max_batch;
  BatchServer server(servable, config);
  std::vector<std::vector<double>> out(clients);
  const auto warm = make_states(1);
  for (std::size_t c = 0; c < clients; ++c) server.decide(warm[0], out[c]);
  ArmResult r = run_clients(
      "SERVE_admission/clients:" + std::to_string(clients) +
          "/max_batch:" + std::to_string(max_batch),
      clients, warmup_ms, measure_ms,
      [&](std::size_t c, const std::vector<double>& s) {
        server.decide(s, out[c]);
      });
  server.stop();
  r.max_batch = max_batch;
  r.lanes = 1;
  r.dropped = server.dropped();
  r.mean_batch = mean_batch_from(server);
  return r;
}

/// The lane sweep: same admission path, N worker lanes off one snapshot.
ArmResult run_lanes(const ActorServable& servable, std::size_t clients,
                    std::size_t max_batch, std::size_t lanes,
                    double warmup_ms, double measure_ms) {
  AdmissionConfig config;
  config.max_batch = max_batch;
  config.lanes = lanes;
  BatchServer server(servable, config);
  std::vector<std::vector<double>> out(clients);
  const auto warm = make_states(1);
  for (std::size_t c = 0; c < clients; ++c) server.decide(warm[0], out[c]);
  ArmResult r = run_clients(
      "SERVE_lanes/clients:" + std::to_string(clients) +
          "/max_batch:" + std::to_string(max_batch) +
          "/lanes:" + std::to_string(lanes),
      clients, warmup_ms, measure_ms,
      [&](std::size_t c, const std::vector<double>& s) {
        server.decide(s, out[c]);
      });
  server.stop();
  r.max_batch = max_batch;
  r.lanes = lanes;
  r.dropped = server.dropped();
  r.version_order_violations = version_monotonicity_violations(server);
  r.mean_batch = mean_batch_from(server);
  return r;
}

ArmResult run_hotswap(ActorServable& servable, std::size_t clients,
                      std::size_t max_batch, std::size_t lanes,
                      double warmup_ms, double measure_ms) {
  // Precompute a pool of perturbed snapshots; the publisher republishes
  // from the pool every ~2 ms while the clients hammer the server.
  std::vector<ActorSnapshot> pool;
  Rng rng(77);
  for (int i = 0; i < 8; ++i) {
    ActorSnapshot snap = *servable.acquire();
    snap.policy.perturb_parameters(0.01, rng);
    pool.push_back(std::move(snap));
  }
  AdmissionConfig config;
  config.max_batch = max_batch;
  config.lanes = lanes;
  BatchServer server(servable, config);
  std::vector<std::vector<double>> out(clients);
  const auto warm = make_states(1);
  for (std::size_t c = 0; c < clients; ++c) server.decide(warm[0], out[c]);

  std::atomic<bool> stop_publisher{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread publisher([&] {
    std::size_t i = 0;
    while (!stop_publisher.load(std::memory_order_relaxed)) {
      servable.publish(pool[i % pool.size()]);
      ++i;
      swaps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(2000));
    }
  });

  ArmResult r = run_clients(
      "SERVE_hotswap/clients:" + std::to_string(clients) +
          "/max_batch:" + std::to_string(max_batch) +
          "/lanes:" + std::to_string(lanes),
      clients, warmup_ms, measure_ms,
      [&](std::size_t c, const std::vector<double>& s) {
        server.decide(s, out[c]);
      });
  stop_publisher = true;
  publisher.join();
  server.stop();
  r.max_batch = max_batch;
  r.lanes = lanes;
  r.swaps = swaps.load();
  r.dropped = server.dropped();
  // With swaps landing mid-stream the per-lane version order is the
  // contract worth asserting here (not just zero drops).
  r.version_order_violations = version_monotonicity_violations(server);
  r.mean_batch = mean_batch_from(server);
  return r;
}

bool write_serve_json(const std::string& path,
                      const std::vector<ArmResult>& records, unsigned cpus) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ArmResult& r = records[i];
    out << "  {\"op\": \"" << r.op << "\", \"clients\": " << r.clients
        << ", \"max_batch\": " << r.max_batch << ", \"lanes\": " << r.lanes
        << ", \"decisions_per_sec\": " << r.decisions_per_sec
        << ", \"p50_ns\": " << r.p50_ns << ", \"p99_ns\": " << r.p99_ns
        << ", \"bytes_per_op\": " << r.bytes_per_op
        << ", \"mean_batch\": " << r.mean_batch
        << ", \"served\": " << r.served << ", \"swaps\": " << r.swaps
        << ", \"dropped\": " << r.dropped << ", \"cpus\": " << cpus
        << ", \"native\": " << (nn::kern::kNativeKernels ? "true" : "false")
        << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

void print_reference_comparison(const bench::RefBench& ref,
                                const std::vector<ArmResult>& records) {
  if (!ref.loaded) return;
  std::printf("\nvs checked-in reference:\n");
  for (const ArmResult& r : records) {
    const auto it = ref.ops.find(r.op);
    if (it == ref.ops.end()) continue;
    const auto dps = it->second.find("decisions_per_sec");
    if (dps == it->second.end() || dps->second <= 0.0) continue;
    std::printf("  %-52s %10.0f dec/s vs ref %10.0f dec/s (%.2fx)%s\n",
                r.op.c_str(), r.decisions_per_sec, dps->second,
                r.decisions_per_sec / dps->second,
                bench::one_cpu_marker(it->second));
  }
}

int serve_main(int argc, char** argv) {
  std::string json_path;
  bench::RefBench reference;
  double measure_ms = 300.0;
  double warmup_ms = 50.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--ref" && i + 1 < argc) {
      // Loaded before any arm runs (and before --json writes), so --ref
      // may name the same checked-in file --json later overwrites.
      reference = bench::load_bench_reference(argv[++i]);
    } else if (arg == "--measure-ms" && i + 1 < argc) {
      measure_ms = std::stod(argv[++i]);
    } else if (arg == "--warmup-ms" && i + 1 < argc) {
      warmup_ms = std::stod(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: micro_serve [--json path] [--ref path] "
                   "[--measure-ms n] [--warmup-ms n]\n");
      return 2;
    }
  }

  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("cpus: %u  native: %d\n", cpus, nn::kern::kNativeKernels);

  ActorServable servable(make_snapshot());
  std::vector<ArmResult> records;
  records.push_back(run_direct(servable, 1, warmup_ms, measure_ms));
  records.push_back(run_direct(servable, 8, warmup_ms, measure_ms));
  for (const std::size_t mb : {std::size_t{1}, std::size_t{8}, std::size_t{16}})
    records.push_back(run_admission(servable, 8, mb, warmup_ms, measure_ms));
  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}})
    records.push_back(run_lanes(servable, 16, 8, lanes, warmup_ms,
                                measure_ms));
  records.push_back(run_hotswap(servable, 8, 8, 4, warmup_ms, measure_ms));

  bool ok = true;
  for (const ArmResult& r : records) {
    std::printf(
        "%-52s %10.0f dec/s   p50 %8.0f ns   p99 %9.0f ns   %6.1f B/op   "
        "batch %4.1f   swaps %llu dropped %llu\n",
        r.op.c_str(), r.decisions_per_sec, r.p50_ns, r.p99_ns, r.bytes_per_op,
        r.mean_batch, static_cast<unsigned long long>(r.swaps),
        static_cast<unsigned long long>(r.dropped));
    if (r.dropped != 0) {
      std::fprintf(stderr, "FAIL %s: dropped %llu requests\n", r.op.c_str(),
                   static_cast<unsigned long long>(r.dropped));
      ok = false;
    }
    if (r.version_order_violations != 0) {
      std::fprintf(stderr,
                   "FAIL %s: %llu per-lane serving-version order violations\n",
                   r.op.c_str(),
                   static_cast<unsigned long long>(r.version_order_violations));
      ok = false;
    }
  }

  print_reference_comparison(reference, records);

  if (!json_path.empty() && !write_serve_json(json_path, records, cpus)) {
    std::fprintf(stderr, "failed to write serve json to %s\n",
                 json_path.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace miras::serve

int main(int argc, char** argv) { return miras::serve::serve_main(argc, argv); }
