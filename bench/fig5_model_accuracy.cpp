// Figure 5: predictive-model accuracy (§VI-B).
//
// Collects transitions from the emulated microservice workflow system with
// random actions that change every 4 steps, trains the dynamics model, and
// compares on a held-out 100-point trace:
//   - ground truth (red dashed line in the paper),
//   - fixed-input prediction: model fed the *true* current state and action
//     (blue line),
//   - iterative prediction: model fed its *own* previous prediction, true
//     actions (green dotted line — exercises the look-ahead capability used
//     in policy learning).
// Reported for the immediate reward and the first WIP dimension, for MSD
// and LIGO. Default scale: 3,000 / 6,000 training entries (paper: 14,000 /
// 37,000 — pass --full).
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/rng.h"
#include "envmodel/dataset.h"
#include "envmodel/dynamics_model.h"
#include "rl/action.h"
#include "workflows/ligo.h"
#include "workflows/msd.h"

namespace miras {
namespace {

using bench::BenchOptions;

struct Fig5Setup {
  std::string name;
  workflows::Ensemble ensemble;
  int budget;
  std::size_t train_entries;
  envmodel::DynamicsModelConfig model_config;
};

envmodel::TransitionDataset collect_random_trace(
    sim::MicroserviceSystem& system, std::size_t entries, std::uint64_t seed) {
  envmodel::TransitionDataset data(system.state_dim(), system.action_dim());
  Rng rng(seed);
  std::vector<double> state = system.reset();
  std::vector<int> action;
  for (std::size_t step = 0; step < entries; ++step) {
    if (step % 4 == 0) {  // actions change every 4 steps (§VI-B)
      std::vector<double> weights(system.action_dim());
      double total = 0.0;
      for (double& w : weights) {
        w = rng.exponential(1.0);
        total += w;
      }
      for (double& w : weights) w /= total;
      action = rl::allocation_from_weights(weights, system.consumer_budget(),
                                           rl::RoundingMode::kLargestRemainder);
    }
    const sim::StepResult result = system.step(action);
    data.add(envmodel::Transition{state, action, result.state, result.reward});
    state = result.state;
    if ((step + 1) % 25 == 0) state = system.reset();  // reset cadence (§VI-A3)
  }
  return data;
}

void run_fig5(const Fig5Setup& setup, const BenchOptions& options,
              std::ostream& out) {
  sim::SystemConfig config;
  config.consumer_budget = setup.budget;
  config.seed = options.seed;
  sim::MicroserviceSystem system(setup.ensemble, config);

  out << "\n=== Figure 5 (" << setup.name << "): collecting "
      << setup.train_entries << " training + 100 test entries\n";
  envmodel::TransitionDataset all =
      collect_random_trace(system, setup.train_entries + 100, options.seed + 7);
  auto [train, test] = all.split_tail(100);

  envmodel::DynamicsModel model(system.state_dim(), system.action_dim(),
                                setup.model_config);
  const double train_loss = model.fit(train);
  out << "final-epoch training loss (normalised): " << train_loss
      << ", held-out one-step MSE (raw WIP): " << model.evaluate(test)
      << "\n";

  // Fixed-input and iterative prediction traces over the 100 test points.
  Table table({"step", "reward_truth", "reward_fixed", "reward_iterative",
               "wip0_truth", "wip0_fixed", "wip0_iterative"});
  std::vector<double> rolling_state = test[0].state;
  double fixed_reward_err = 0.0, iter_reward_err = 0.0;
  for (std::size_t k = 0; k < test.size(); ++k) {
    const envmodel::Transition& t = test[k];
    const std::vector<double> fixed = model.predict(t.state, t.action);
    const std::vector<double> iterative = model.predict(rolling_state, t.action);
    const double truth_reward = envmodel::DynamicsModel::reward_of(t.next_state);
    const double fixed_reward = envmodel::DynamicsModel::reward_of(fixed);
    const double iter_reward = envmodel::DynamicsModel::reward_of(iterative);
    table.add_numeric_row({static_cast<double>(k), truth_reward, fixed_reward,
                           iter_reward, t.next_state[0], fixed[0],
                           iterative[0]},
                          2);
    fixed_reward_err += std::abs(fixed_reward - truth_reward);
    iter_reward_err += std::abs(iter_reward - truth_reward);
    rolling_state = iterative;
    for (double& w : rolling_state) w = std::max(w, 0.0);
  }
  bench::emit(table, options, "Figure 5 series — " + setup.name, out);
  out << "mean |reward error|: fixed-input="
      << fixed_reward_err / static_cast<double>(test.size())
      << "  iterative=" << iter_reward_err / static_cast<double>(test.size())
      << "  (iterative should be moderately higher: cumulative error;"
         " both should track the trend)\n";
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  std::vector<Fig5Setup> setups;
  if (options.dataset.empty() || options.dataset == "msd") {
    Fig5Setup msd{"MSD", workflows::make_msd_ensemble(),
                  workflows::kMsdConsumerBudget,
                  options.full ? std::size_t{14000} : std::size_t{3000},
                  {}};
    msd.model_config.hidden_dims = {20, 20, 20};  // §VI-A3
    msd.model_config.epochs = options.full ? 60 : 40;
    setups.push_back(std::move(msd));
  }
  if (options.dataset.empty() || options.dataset == "ligo") {
    Fig5Setup ligo{"LIGO", workflows::make_ligo_ensemble(),
                   workflows::kLigoConsumerBudget,
                   options.full ? std::size_t{37000} : std::size_t{6000},
                   {}};
    ligo.model_config.hidden_dims = {20};  // 1-layer, counters overfitting
    ligo.model_config.epochs = options.full ? 60 : 40;
    setups.push_back(std::move(ligo));
  }

  // Dataset sections are independent; run them concurrently with buffered
  // output, printed in dataset order so stdout never depends on timing.
  const auto pool = bench::make_pool(options);
  std::vector<std::ostringstream> buffers(setups.size());
  {
    const bench::ScopedTimer timer("fig5 total", options.threads);
    const auto run_section = [&](std::size_t i) {
      run_fig5(setups[i], options, buffers[i]);
    };
    if (pool != nullptr) {
      pool->parallel_for(setups.size(), run_section);
    } else {
      for (std::size_t i = 0; i < setups.size(); ++i) run_section(i);
    }
  }
  for (const auto& buffer : buffers) std::cout << buffer.str();
  return 0;
}
