// Shared plumbing for the micro benches: heap-allocation accounting, a
// `--json <path>` flag, a reporter that captures every google-benchmark run
// as {op, ns_per_op, bytes_per_op, iterations} for machine consumption (the
// CI perf artifacts BENCH_nn.json / BENCH_parallel.json), and a checked-in
// reference loader (`--ref <path>`) that prints current-vs-reference
// comparisons — flagged `[1-cpu-reference]` when the reference was recorded
// on a 1-CPU container, where parallel speedups are physically impossible
// and the recorded ratios are NOT the binding evidence (see ROADMAP items
// 1/2/5; the CI floors measured on multi-core runners are).
//
// Include from exactly ONE translation unit per binary: this header defines
// the replaceable global operator new/delete so that allocation counts need
// no instrumentation in the measured code. Each micro bench is a single-file
// executable, which satisfies that by construction.
//
// Harnesses that own their timing loop (micro_serve, micro_scaling) define
// MIRAS_BENCH_JSON_NO_GBENCH before including (they link no
// google-benchmark) and, when they install their own counting allocator,
// MIRAS_BENCH_JSON_NO_ALLOC_HOOKS — they still get the JSON writer and the
// reference-comparison helpers.
#pragma once

#ifndef MIRAS_BENCH_JSON_NO_GBENCH
#include <benchmark/benchmark.h>
#endif

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace miras::bench {

/// Total bytes ever requested through global operator new. Monotonic;
/// benchmarks record a delta around their timed loop and divide by the
/// iteration count. Relaxed atomics: the counter is read single-threadedly
/// between runs, never used for synchronisation.
inline std::atomic<std::uint64_t>& allocated_bytes() {
  static std::atomic<std::uint64_t> bytes{0};
  return bytes;
}

/// Attaches a "bytes_per_op" user counter covering the benchmark's timed
/// loop. Usage:
///   const std::uint64_t alloc0 = bench::allocation_mark();
///   for (auto _ : state) { ... }
///   bench::record_bytes_per_op(state, alloc0);
inline std::uint64_t allocation_mark() {
  return allocated_bytes().load(std::memory_order_relaxed);
}

struct BenchRecord {
  std::string op;
  double ns_per_op = 0.0;
  double bytes_per_op = 0.0;
  std::int64_t iterations = 0;
  /// Every other user counter the benchmark attached (events_per_sec,
  /// shards, cpus, speedup, ...), serialised as first-class JSON fields so
  /// CI floor checks can read them without parsing benchmark names.
  std::vector<std::pair<std::string, double>> extra;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "  {\"op\": \"" << json_escape(r.op)
        << "\", \"ns_per_op\": " << r.ns_per_op
        << ", \"bytes_per_op\": " << r.bytes_per_op
        << ", \"iterations\": " << r.iterations;
    for (const auto& [name, value] : r.extra)
      out << ", \"" << json_escape(name) << "\": " << value;
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

// ---------------------------------------------------------------------------
// Checked-in reference comparison.
//
// Every BENCH_*.json at the repo root is a *recorded reference*, and several
// were recorded on a 1-CPU container (their `cpus` field says so) where any
// parallel speedup is physically impossible. Whenever a bench log compares
// the current run against such a reference, the comparison line carries a
// loud [1-cpu-reference] marker so the caveat travels with the numbers
// instead of living only in ROADMAP prose.

/// One reference run: numeric fields by name ("op" is the key, not a field;
/// true/false parse as 1/0, non-"op" strings are skipped).
using RefFields = std::map<std::string, double>;

struct RefBench {
  std::map<std::string, RefFields> ops;
  bool loaded = false;
};

/// Minimal parser for the flat record arrays the writers above (and the
/// harness-owned writers in micro_serve / micro_scaling) emit: an array of
/// one-level objects with string/number/bool values. Tolerant of
/// whitespace; anything unparseable just ends the scan with what was read.
inline RefBench load_bench_reference(const std::string& path) {
  RefBench ref;
  std::ifstream in(path);
  if (!in) return ref;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  const auto parse_string = [&](std::string& out) {
    out.clear();
    if (i >= text.size() || text[i] != '"') return false;
    for (++i; i < text.size(); ++i) {
      if (text[i] == '\\' && i + 1 < text.size()) {
        out.push_back(text[++i]);
      } else if (text[i] == '"') {
        ++i;
        return true;
      } else {
        out.push_back(text[i]);
      }
    }
    return false;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') return ref;
  ++i;
  std::string key, str_value;
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '{') break;
    ++i;
    RefFields fields;
    std::string op;
    while (true) {
      skip_ws();
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      if (!parse_string(key)) return ref;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return ref;
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        if (!parse_string(str_value)) return ref;
        if (key == "op") op = str_value;
      } else if (text.compare(i, 4, "true") == 0) {
        fields[key] = 1.0;
        i += 4;
      } else if (text.compare(i, 5, "false") == 0) {
        fields[key] = 0.0;
        i += 5;
      } else {
        char* end = nullptr;
        fields[key] = std::strtod(text.c_str() + i, &end);
        if (end == text.c_str() + i) return ref;
        i = static_cast<std::size_t>(end - text.c_str());
      }
      skip_ws();
      if (i < text.size() && text[i] == ',') ++i;
    }
    if (!op.empty()) ref.ops.emplace(std::move(op), std::move(fields));
    ref.loaded = true;
    skip_ws();
    if (i < text.size() && text[i] == ',') ++i;
  }
  return ref;
}

/// The marker every reference comparison must carry when the reference was
/// recorded on a 1-CPU box: ratios against it are conservative/meaningless
/// for anything parallel, and CI's multi-core floors are the binding
/// evidence (ROADMAP items 1/2/5).
inline const char* one_cpu_marker(const RefFields& fields) {
  const auto it = fields.find("cpus");
  return it != fields.end() && it->second == 1.0 ? " [1-cpu-reference]" : "";
}

/// Prints current-vs-reference ns/op for every op present in both, each
/// line flagged with one_cpu_marker when it applies.
inline void print_reference_comparisons(
    const RefBench& ref, const std::vector<BenchRecord>& records) {
  if (!ref.loaded) return;
  std::printf("\nvs checked-in reference:\n");
  for (const BenchRecord& r : records) {
    const auto it = ref.ops.find(r.op);
    if (it == ref.ops.end()) continue;
    const auto ns = it->second.find("ns_per_op");
    if (ns == it->second.end() || ns->second <= 0.0 || r.ns_per_op <= 0.0)
      continue;
    std::printf("  %-52s %12.0f ns/op vs ref %12.0f ns/op (%.2fx)%s\n",
                r.op.c_str(), r.ns_per_op, ns->second,
                ns->second / r.ns_per_op, one_cpu_marker(it->second));
  }
}

#ifndef MIRAS_BENCH_JSON_NO_GBENCH

inline void record_bytes_per_op(benchmark::State& state, std::uint64_t mark) {
  const std::uint64_t delta =
      allocated_bytes().load(std::memory_order_relaxed) - mark;
  state.counters["bytes_per_op"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(delta) / static_cast<double>(state.iterations())
          : 0.0);
}

/// Console reporter that additionally captures per-iteration runs (skipping
/// aggregate rows) for the JSON dump.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchRecord record;
      record.op = run.benchmark_name();
      record.iterations = run.iterations;
      if (run.iterations > 0) {
        record.ns_per_op = run.real_accumulated_time /
                           static_cast<double>(run.iterations) * 1e9;
      }
      for (const auto& [name, counter] : run.counters) {
        if (name == "bytes_per_op") {
          record.bytes_per_op = static_cast<double>(counter);
        } else {
          // Rate counters report per-second values already resolved by the
          // benchmark library at this point.
          record.extra.emplace_back(name, static_cast<double>(counter));
        }
      }
      records_.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: strips `--json <path>`
/// and `--ref <path>` from argv (google-benchmark rejects unknown flags),
/// runs the registered benchmarks through the capturing reporter, dumps the
/// JSON if asked, and prints reference comparisons if a reference was
/// given. The reference is loaded BEFORE the run, so `--ref` may name the
/// same checked-in file a later `--json` overwrites.
inline int run_benchmarks(int argc, char** argv) {
  std::string json_path;
  RefBench reference;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ref") == 0 && i + 1 < argc) {
      reference = load_bench_reference(argv[++i]);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  print_reference_comparisons(reference, reporter.records());
  if (!json_path.empty()) {
    // Stamp the machine width into every record so a future run comparing
    // against this artifact knows whether [1-cpu-reference] applies.
    std::vector<BenchRecord> records = reporter.records();
    const double cpus =
        static_cast<double>(std::thread::hardware_concurrency());
    for (BenchRecord& r : records) {
      bool has_cpus = false;
      for (const auto& [name, value] : r.extra) {
        if (name == "cpus") has_cpus = true;
        (void)value;
      }
      if (!has_cpus) r.extra.emplace_back("cpus", cpus);
    }
    if (!write_bench_json(json_path, records)) {
      std::fprintf(stderr, "failed to write bench json to %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  return 0;
}

#endif  // MIRAS_BENCH_JSON_NO_GBENCH

}  // namespace miras::bench

#ifndef MIRAS_BENCH_JSON_NO_ALLOC_HOOKS

// Replaceable global allocation functions feeding the byte counter. Sized
// and unsized deletes both forward to free; the count tracks requests, not
// live bytes, which is what a "did this path allocate at all" check needs.
// new/delete pair up malloc/free consistently here, so the compiler's
// mismatch heuristic (which only sees the free) is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  miras::bench::allocated_bytes().fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // MIRAS_BENCH_JSON_NO_ALLOC_HOOKS
