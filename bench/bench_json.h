// Shared plumbing for the google-benchmark micro benches: heap-allocation
// accounting, a `--json <path>` flag, and a reporter that captures every run
// as {op, ns_per_op, bytes_per_op, iterations} for machine consumption (the
// CI perf artifacts BENCH_nn.json / BENCH_parallel.json).
//
// Include from exactly ONE translation unit per binary: this header defines
// the replaceable global operator new/delete so that allocation counts need
// no instrumentation in the measured code. Each micro bench is a single-file
// executable, which satisfies that by construction.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace miras::bench {

/// Total bytes ever requested through global operator new. Monotonic;
/// benchmarks record a delta around their timed loop and divide by the
/// iteration count. Relaxed atomics: the counter is read single-threadedly
/// between runs, never used for synchronisation.
inline std::atomic<std::uint64_t>& allocated_bytes() {
  static std::atomic<std::uint64_t> bytes{0};
  return bytes;
}

/// Attaches a "bytes_per_op" user counter covering the benchmark's timed
/// loop. Usage:
///   const std::uint64_t alloc0 = bench::allocation_mark();
///   for (auto _ : state) { ... }
///   bench::record_bytes_per_op(state, alloc0);
inline std::uint64_t allocation_mark() {
  return allocated_bytes().load(std::memory_order_relaxed);
}

inline void record_bytes_per_op(benchmark::State& state, std::uint64_t mark) {
  const std::uint64_t delta =
      allocated_bytes().load(std::memory_order_relaxed) - mark;
  state.counters["bytes_per_op"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(delta) / static_cast<double>(state.iterations())
          : 0.0);
}

struct BenchRecord {
  std::string op;
  double ns_per_op = 0.0;
  double bytes_per_op = 0.0;
  std::int64_t iterations = 0;
  /// Every other user counter the benchmark attached (events_per_sec,
  /// shards, cpus, speedup, ...), serialised as first-class JSON fields so
  /// CI floor checks can read them without parsing benchmark names.
  std::vector<std::pair<std::string, double>> extra;
};

/// Console reporter that additionally captures per-iteration runs (skipping
/// aggregate rows) for the JSON dump.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchRecord record;
      record.op = run.benchmark_name();
      record.iterations = run.iterations;
      if (run.iterations > 0) {
        record.ns_per_op = run.real_accumulated_time /
                           static_cast<double>(run.iterations) * 1e9;
      }
      for (const auto& [name, counter] : run.counters) {
        if (name == "bytes_per_op") {
          record.bytes_per_op = static_cast<double>(counter);
        } else {
          // Rate counters report per-second values already resolved by the
          // benchmark library at this point.
          record.extra.emplace_back(name, static_cast<double>(counter));
        }
      }
      records_.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << "  {\"op\": \"" << json_escape(r.op)
        << "\", \"ns_per_op\": " << r.ns_per_op
        << ", \"bytes_per_op\": " << r.bytes_per_op
        << ", \"iterations\": " << r.iterations;
    for (const auto& [name, value] : r.extra)
      out << ", \"" << json_escape(name) << "\": " << value;
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body: strips `--json <path>`
/// from argv (google-benchmark rejects unknown flags), runs the registered
/// benchmarks through the capturing reporter, and dumps the JSON if asked.
inline int run_benchmarks(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() &&
      !write_bench_json(json_path, reporter.records())) {
    std::fprintf(stderr, "failed to write bench json to %s\n",
                 json_path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace miras::bench

// Replaceable global allocation functions feeding the byte counter. Sized
// and unsized deletes both forward to free; the count tracks requests, not
// live bytes, which is what a "did this path allocate at all" check needs.
// new/delete pair up malloc/free consistently here, so the compiler's
// mismatch heuristic (which only sees the free) is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  miras::bench::allocated_bytes().fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
