// Microbenchmarks of the distributed actor-learner plumbing
// (google-benchmark): persist frame encode/decode, wire batch round trips,
// the learner's replay-fold ingest path, and a live socketpair transport
// ping. The fold paths are the ones the zero-allocation contract covers:
// once warm, bytes_per_op must be exactly 0 (asserted by the CI floor on
// BENCH_dist.json). Pass `--json <path>` to dump
// {op, ns_per_op, bytes_per_op, iterations, transitions_per_sec} records.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "persist/binary_io.h"
#include "persist/frame_stream.h"
#include "rl/ddpg.h"

namespace miras {
namespace {

constexpr std::size_t kStateDim = 6;
constexpr std::size_t kActionDim = 6;
constexpr std::size_t kBatchTransitions = 25;

dist::BatchMsg make_batch(std::uint64_t seed) {
  Rng rng(seed);
  dist::BatchMsg batch;
  batch.collector_id = 0;
  batch.round = 1;
  batch.batch_seq = 0;
  batch.episode_index = 0;
  batch.transitions.resize(kBatchTransitions);
  for (envmodel::Transition& t : batch.transitions) {
    t.state.resize(kStateDim);
    for (double& s : t.state) s = rng.uniform(0.0, 40.0);
    t.action.resize(kActionDim);
    for (int& a : t.action) a = static_cast<int>(rng.uniform_int(0, 4));
    t.next_state.resize(kStateDim);
    for (double& s : t.next_state) s = rng.uniform(0.0, 40.0);
    t.reward = rng.uniform(-5.0, 0.0);
  }
  return batch;
}

void set_transition_rate(benchmark::State& state) {
  state.counters["transitions_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(kBatchTransitions),
      benchmark::Counter::kIsRate);
}

// Frame one encoded batch and decode it back through the incremental
// decoder. All buffers are reused, so the steady state allocates nothing.
void BM_FrameEncodeDecode(benchmark::State& state) {
  persist::BinaryWriter message;
  encode_batch(message, make_batch(3));
  std::vector<std::uint8_t> frame;
  std::vector<std::uint8_t> payload;
  persist::FrameDecoder decoder;
  // Warm pass sizes frame, payload, and the decoder's internal buffer.
  persist::append_frame(frame, message.bytes().data(), message.size());
  decoder.feed(frame.data(), frame.size());
  (void)decoder.next(payload);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    frame.clear();
    persist::append_frame(frame, message.bytes().data(), message.size());
    decoder.feed(frame.data(), frame.size());
    const bool got = decoder.next(payload);
    benchmark::DoNotOptimize(got);
  }
  bench::record_bytes_per_op(state, alloc0);
  set_transition_rate(state);
}
BENCHMARK(BM_FrameEncodeDecode)->Unit(benchmark::kMicrosecond);

// Wire-encode one Batch message and decode it into a reused scratch
// message (the learner's decode path).
void BM_WireBatchRoundTrip(benchmark::State& state) {
  const dist::BatchMsg batch = make_batch(5);
  persist::BinaryWriter out;
  dist::BatchMsg scratch;
  // Warm pass sizes the writer and the scratch message's vectors.
  encode_batch(out, batch);
  {
    persist::BinaryReader in(out.bytes().data(), out.size(), "b");
    (void)dist::decode_type(in);
    decode_batch_into(in, scratch);
  }
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    out.clear();
    encode_batch(out, batch);
    persist::BinaryReader in(out.bytes().data(), out.size(), "b");
    (void)dist::decode_type(in);
    decode_batch_into(in, scratch);
    benchmark::DoNotOptimize(scratch.transitions.size());
  }
  bench::record_bytes_per_op(state, alloc0);
  set_transition_rate(state);
}
BENCHMARK(BM_WireBatchRoundTrip)->Unit(benchmark::kMicrosecond);

// observe() takes the action as continuous weights; the wire carries the
// discrete allocation. The fold loops convert through this reused buffer.
void fold_transition(rl::DdpgAgent& agent, const envmodel::Transition& t,
                     std::vector<double>& action) {
  action.resize(t.action.size());
  for (std::size_t j = 0; j < t.action.size(); ++j)
    action[j] = static_cast<double>(t.action[j]);
  agent.observe(t.state, action, t.reward, t.next_state);
}

rl::DdpgAgent make_fold_agent() {
  rl::DdpgConfig config;
  config.seed = 23;
  config.replay_capacity = 512;
  rl::DdpgAgent agent(kStateDim, kActionDim, /*consumer_budget=*/12, config);
  // Fill the replay ring to capacity (plus the n-step window) so the timed
  // loop overwrites slots instead of growing storage.
  const dist::BatchMsg batch = make_batch(7);
  std::vector<double> action;
  for (std::size_t i = 0; i < config.replay_capacity + config.n_step; ++i) {
    fold_transition(agent,
                    batch.transitions[i % batch.transitions.size()], action);
  }
  return agent;
}

// The degenerate (no framing, no transport) replay-fold path: transitions
// already in memory folded straight into the ring. This is the learner's
// per-transition floor; bytes_per_op must be 0.
void BM_ReplayFoldDirect(benchmark::State& state) {
  rl::DdpgAgent agent = make_fold_agent();
  const dist::BatchMsg batch = make_batch(7);
  std::vector<double> action(kActionDim);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    for (const envmodel::Transition& t : batch.transitions)
      fold_transition(agent, t, action);
    benchmark::DoNotOptimize(agent.replay_size());
  }
  bench::record_bytes_per_op(state, alloc0);
  set_transition_rate(state);
}
BENCHMARK(BM_ReplayFoldDirect)->Unit(benchmark::kMicrosecond);

// The full learner ingest path: framed bytes -> FrameDecoder -> wire decode
// into a reused scratch message -> replay fold. Still zero steady-state
// allocations end to end.
void BM_ReplayFoldFramed(benchmark::State& state) {
  rl::DdpgAgent agent = make_fold_agent();
  persist::BinaryWriter message;
  encode_batch(message, make_batch(7));
  std::vector<std::uint8_t> frame;
  persist::append_frame(frame, message.bytes().data(), message.size());
  persist::FrameDecoder decoder;
  std::vector<std::uint8_t> payload;
  dist::BatchMsg scratch;
  std::vector<double> action(kActionDim);
  // Warm pass sizes the decoder buffer, payload, and scratch vectors.
  decoder.feed(frame.data(), frame.size());
  (void)decoder.next(payload);
  {
    persist::BinaryReader in(payload.data(), payload.size(), "b");
    (void)dist::decode_type(in);
    decode_batch_into(in, scratch);
  }
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    decoder.feed(frame.data(), frame.size());
    const bool got = decoder.next(payload);
    benchmark::DoNotOptimize(got);
    persist::BinaryReader in(payload.data(), payload.size(), "b");
    (void)dist::decode_type(in);
    decode_batch_into(in, scratch);
    for (const envmodel::Transition& t : scratch.transitions)
      fold_transition(agent, t, action);
  }
  bench::record_bytes_per_op(state, alloc0);
  set_transition_rate(state);
}
BENCHMARK(BM_ReplayFoldFramed)->Unit(benchmark::kMicrosecond);

// One Batch message pushed through a real socketpair and read back on the
// peer end (send syscall + poll + recv + reframe). Single-threaded ping:
// the kernel buffer absorbs the frame, so no reader thread is needed.
void BM_PipeTransport(benchmark::State& state) {
  auto [learner_end, collector_end] = dist::make_socketpair_streams();
  dist::MessageChannel sender(collector_end.get());
  dist::MessageChannel receiver(learner_end.get());
  persist::BinaryWriter message;
  encode_batch(message, make_batch(9));
  std::vector<std::uint8_t> payload;
  // Warm ping sizes both channels' scratch buffers.
  sender.send_message(message);
  (void)receiver.poll_payload(payload, /*timeout_ms=*/1000);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    sender.send_message(message);
    const dist::RecvStatus status =
        receiver.poll_payload(payload, /*timeout_ms=*/1000);
    benchmark::DoNotOptimize(status);
  }
  bench::record_bytes_per_op(state, alloc0);
  set_transition_rate(state);
}
BENCHMARK(BM_PipeTransport)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  return miras::bench::run_benchmarks(argc, argv);
}
