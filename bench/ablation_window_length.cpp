// §VI-A2 ablation: control-window length (5 s / 15 s / 30 s).
//
// The paper: "We have tested 5s, 15s, and 30s, and 30s is the best option"
// — short windows amplify container start-up overhead (5-10 s of a 5 s
// window is pure churn) and observation noise; long windows react too
// slowly. This bench holds the controller fixed (MONAD one-step MPC — a
// deterministic controller isolates the window-length effect from RL
// training variance) and a fixed MIRAS training budget, and sweeps the
// window length on MSD.
#include <iostream>

#include "baselines/monad.h"
#include "bench_util.h"
#include "core/evaluation.h"
#include "core/miras_agent.h"
#include "workflows/msd.h"

namespace miras {
namespace {

std::vector<std::vector<std::string>> run_window_arm(
    double window, const bench::BenchOptions& options) {
  const std::vector<std::pair<std::string, sim::BurstSpec>> scenarios{
      {"steady", sim::BurstSpec{}},
      {"burst(300,200,300)", sim::BurstSpec{{300, 200, 300}}}};

  // Equal *wall-clock* horizon for every window length.
  const double horizon_seconds = 40.0 * 30.0;
  const auto steps = static_cast<std::size_t>(horizon_seconds / window);

  std::vector<std::vector<std::string>> rows;
  // Deterministic MPC controller.
  for (const auto& [label, burst] : scenarios) {
    sim::SystemConfig config;
    config.consumer_budget = workflows::kMsdConsumerBudget;
    config.window_length = window;
    config.seed = options.seed + 3;
    sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);
    baselines::MonadConfig monad_config;
    monad_config.window_length = window;
    baselines::MonadPolicy monad(system.ensemble(), monad_config);
    const auto trace =
        core::run_scenario(system, monad, core::ScenarioConfig{burst, steps});
    // Rewards are per-window; normalise to per-30s so lengths compare.
    const double normalised = trace.aggregate_reward() * (window / 30.0);
    rows.push_back({format_double(window, 0), "monad", label,
                    format_double(normalised, 1),
                    format_double(trace.mean_response_time(), 1),
                    format_double(trace.total_wip_series().back(), 1)});
  }

  // MIRAS with a fixed (reduced) training budget at this window length.
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.window_length = window;
  config.seed = options.seed + 4;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);
  core::MirasConfig miras_config = core::miras_msd_fast_config();
  miras_config.outer_iterations = options.full ? 8 : 5;
  miras_config.seed = options.seed + 5;
  core::MirasAgent agent(&system, miras_config);
  agent.train();
  auto policy = agent.make_policy();
  for (const auto& [label, burst] : scenarios) {
    sim::SystemConfig eval_config = config;
    eval_config.seed = options.seed + 6;
    sim::MicroserviceSystem eval_system(workflows::make_msd_ensemble(),
                                        eval_config);
    const auto trace = core::run_scenario(eval_system, *policy,
                                          core::ScenarioConfig{burst, steps});
    const double normalised = trace.aggregate_reward() * (window / 30.0);
    rows.push_back({format_double(window, 0), "miras", label,
                    format_double(normalised, 1),
                    format_double(trace.mean_response_time(), 1),
                    format_double(trace.total_wip_series().back(), 1)});
  }
  return rows;
}

void run_window_ablation(const bench::BenchOptions& options) {
  const std::vector<double> windows{5.0, 15.0, 30.0};

  // The window arms are independent; run them concurrently and assemble the
  // table serially in window order.
  const auto pool = bench::make_pool(options);
  std::vector<std::vector<std::vector<std::string>>> arm_rows(windows.size());
  {
    const bench::ScopedTimer timer("window-length ablation", options.threads);
    const auto run_arm = [&](std::size_t i) {
      arm_rows[i] = run_window_arm(windows[i], options);
    };
    if (pool != nullptr) {
      pool->parallel_for(windows.size(), run_arm);
    } else {
      for (std::size_t i = 0; i < windows.size(); ++i) run_arm(i);
    }
  }

  Table table({"window_s", "controller", "scenario", "aggregate_reward",
               "mean_rt_s", "final_total_wip"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (const auto& row : arm_rows[i]) table.add_row(row);
    std::cout << "window " << windows[i] << " s done\n";
  }
  bench::emit(table, options,
              "Window-length ablation (rewards normalised per 30 s)");
  std::cout << "\nExpected shape (paper §VI-A2): 5 s windows pay heavy\n"
               "container-churn overhead (startup is 5-10 s), 30 s performs\n"
               "best overall; the effect is strongest under bursts.\n";
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  const auto options = miras::bench::parse_options(argc, argv);
  miras::run_window_ablation(options);
  return 0;
}
