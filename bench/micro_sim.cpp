// Microbenchmarks of the discrete-event emulator (google-benchmark):
// raw typed-event-queue throughput, window-step throughput for MSD and LIGO
// under steady and burst load, sharded-engine event throughput and window
// stepping on a generated 128-task-type ensemble, reset-reuse cycles, and
// per-thread episode scaling on pooled systems. Every benchmark reports
// bytes_per_op; the serial steady-state event-stepping path must report
// exactly 0, sharded arms a bounded high-watermark total (see
// BM_GeneratedEventThroughput). Pass `--json <path>` to dump records with
// all user counters (events_per_sec, shards, cpus, ...) — the
// BENCH_sim.json CI artifact.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/object_pool.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/shard.h"
#include "sim/system.h"
#include "workflows/generated.h"
#include "workflows/ligo.h"
#include "workflows/msd.h"

namespace miras {
namespace {

std::unique_ptr<sim::MicroserviceSystem> make_msd_system(std::uint64_t seed) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = seed;
  return std::make_unique<sim::MicroserviceSystem>(
      workflows::make_msd_ensemble(), config);
}

// The 128-task-type scenario the sharded arms run: short lognormal services
// and a consumer budget large enough that the cluster completes thousands
// of tasks per simulated second — the regime where one serial event loop is
// the bottleneck the sharded engine exists to break.
constexpr int kGeneratedBudget = 2048;

workflows::Ensemble make_generated_bench_ensemble() {
  workflows::GeneratedOptions options;
  options.num_task_types = 128;
  options.num_workflows = 32;
  options.service_mean_min = 0.05;
  options.service_mean_max = 0.5;
  options.consumer_budget = kGeneratedBudget;
  options.utilization = 0.85;
  options.seed = 99;
  return workflows::make_generated_ensemble(options);
}

// Consumers apportioned to each type's offered load (arrival rate x visit
// count x mean service time), largest-remainder rounded so the counts sum
// to exactly `budget`, with at least one consumer wherever load exists.
// The generated ensemble's per-type load is deliberately uneven, so an
// even split would pin the heavy types above utilization 1 and their
// queues (and allocation counts) would grow without bound.
std::vector<int> proportional_allocation(const workflows::Ensemble& ensemble,
                                         int budget) {
  const std::size_t types = ensemble.num_task_types();
  std::vector<double> load(types, 0.0);
  for (std::size_t w = 0; w < ensemble.num_workflows(); ++w) {
    const auto& graph = ensemble.workflow(w);
    for (std::size_t n = 0; n < graph.num_nodes(); ++n) {
      const std::size_t j = graph.task_type_of(n);
      load[j] += ensemble.arrival_rate(w) *
                 ensemble.task_type(j).service_time.mean();
    }
  }
  double total = 0.0;
  for (const double l : load) total += l;
  std::vector<int> allocation(types, 0);
  int assigned = 0;
  for (std::size_t j = 0; j < types; ++j) {
    if (load[j] <= 0.0) continue;
    allocation[j] = 1;
    ++assigned;
  }
  const int spare = budget - assigned;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t j = 0; j < types; ++j) {
    if (load[j] <= 0.0) continue;
    const double share = load[j] / total * static_cast<double>(spare);
    const int whole = static_cast<int>(share);
    allocation[j] += whole;
    assigned += whole;
    remainders.emplace_back(share - whole, j);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; assigned < budget && !remainders.empty(); ++i) {
    ++allocation[remainders[i % remainders.size()].second];
    ++assigned;
  }
  return allocation;
}

std::unique_ptr<sim::MicroserviceSystem> make_generated_system(int shards) {
  sim::SystemConfig config;
  config.consumer_budget = kGeneratedBudget;
  config.seed = 1;
  config.shards = shards;
  return std::make_unique<sim::MicroserviceSystem>(
      make_generated_bench_ensemble(), config);
}

void attach_shard_counters(benchmark::State& state, int shards) {
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["cpus"] = benchmark::Counter(
      static_cast<double>(std::thread::hardware_concurrency()));
}

// What one completion looked like to the pre-rewrite engine: a value-
// returned result whose ready-node list lives on the heap.
struct LegacyCompletion {
  std::vector<std::size_t> ready_nodes;
  std::size_t workflow_type = 0;
  double arrival_time = 0.0;
  bool workflow_complete = false;
};

// The pre-rewrite event queue, reproduced verbatim from git history
// (engine.h/.cpp before the typed-core rewrite): a std::priority_queue of
// 48-byte entries that own a std::function, drained by *copying* the top
// entry before pop — for captures past the 16-byte small buffer that is a
// second allocation per event, on top of the one schedule() makes.
class LegacyEventQueue {
 public:
  using Handler = std::function<void()>;

  sim::SimTime now() const { return now_; }

  void schedule(sim::SimTime when, Handler handler) {
    heap_.push(Entry{when, next_seq_++, std::move(handler)});
  }

  void run_until(sim::SimTime until) {
    while (!heap_.empty() && heap_.top().time <= until) {
      Entry entry = heap_.top();  // the pre-rewrite copy-before-pop
      heap_.pop();
      now_ = entry.time;
      entry.handler();
    }
    now_ = until;
  }

 private:
  struct Entry {
    sim::SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  sim::SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

// The pre-rewrite engine's per-event steady-state pattern, reproduced from
// git history: try_dispatch scheduled `[this, task_type, request]` (40
// bytes of capture — off libstdc++'s 16-byte std::function small buffer,
// so one heap allocation per scheduled event), run_until copied that
// closure back out on drain (a second), and handle_task_complete looked
// the instance up in an unordered_map and copied a CompletionResult by
// value, heap-allocating its ready-node list (a third). This is the
// reference the typed core's steady-state throughput claim in
// BENCH_sim.json is measured against; the new path is
// BM_TypedEventQueueScheduleRun on the identical schedule pattern.
void BM_LegacyEventDispatch(benchmark::State& state) {
  LegacyEventQueue events;  // long-lived, like the old engine's member
  std::uint64_t counter = 0;
  // The old DependencyService: live instances in an unordered_map, one
  // hash lookup per completion. ~300 live instances matches the burst
  // backlogs the steady benches run under.
  std::unordered_map<std::uint64_t, LegacyCompletion> instances;
  for (std::uint64_t id = 0; id < 300; ++id) {
    LegacyCompletion completion;
    completion.ready_nodes = {3, 5};
    instances.emplace(id, std::move(completion));
  }
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    const sim::SimTime base = events.now();
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t instance = static_cast<std::uint64_t>(i) % 300;
      const std::size_t node = static_cast<std::size_t>(i) & 7;
      events.schedule(
          base + static_cast<double>(i % 97),
          [&counter, &instances, instance, node] {
            const LegacyCompletion completion =
                instances.find(instance)->second;
            counter += completion.ready_nodes.size() + node + instance;
          });
    }
    events.run_until(base + 100.0);
    benchmark::DoNotOptimize(counter);
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyEventDispatch);

// Typed queue on the same schedule/run pattern: POD events, no closures.
// The queue lives across iterations (heap capacity reused), like the one
// inside MicroserviceSystem.
void BM_TypedEventQueueScheduleRun(benchmark::State& state) {
  sim::TypedEventQueue events;
  std::uint64_t counter = 0;
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    const sim::SimTime base = events.now();
    sim::Event event;
    event.type = sim::EventType::kConsumerReady;
    for (int i = 0; i < 1000; ++i)
      events.schedule(base + static_cast<double>(i % 97), event);
    events.run_until(base + 100.0,
                     [&counter](sim::Event&&) { ++counter; });
    benchmark::DoNotOptimize(counter);
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TypedEventQueueScheduleRun);

// Steady-state event throughput through the full simulator dispatch path
// (arrivals, dispatches, completions, DAG routing) with no window
// accounting: items processed = events executed, and bytes_per_op must be 0
// — the acceptance criterion for the typed-event core.
void BM_SimEventThroughput(benchmark::State& state) {
  auto system = make_msd_system(1);
  // Warm up: allocate consumers, then push the slab, rings, and heap past
  // any watermark the steady arrival stream can reach (a 200-per-type
  // burst), and drain it. After this nothing on the stepping path grows.
  (void)system->step(std::vector<int>{4, 4, 3, 3});
  system->inject_burst(sim::BurstSpec{{200, 200, 200}});
  system->run_for(5000.0);
  std::uint64_t executed = system->executed_events();
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    system->run_for(100.0);
    benchmark::DoNotOptimize(system->now());
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(system->executed_events() - executed));
}
BENCHMARK(BM_SimEventThroughput);

// Sharded-engine event throughput on the generated 128-type ensemble.
// Arg 1 runs the serial engine on the identical ensemble (the baseline the
// CI ≥1.5x floor at 4 shards is asserted against); args >= 2 run the
// sharded engine on a thread pool with one worker per shard. The serial
// arm must report exactly 0 bytes/op (the preserved steady-state
// contract); sharded arms may grow a high-watermark buffer a few KB past
// the warm-up's peak, so CI bounds their TOTAL bytes instead — a real
// per-event leak would be megabytes per iteration. events_per_sec is a
// rate counter (events executed / wall second); shards and cpus ride along
// so the floor check can tell a 1-CPU recording from a multicore one.
void BM_GeneratedEventThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto system = make_generated_system(shards);
  common::ThreadPool pool(static_cast<std::size_t>(shards));
  if (shards >= 2) system->set_thread_pool(&pool);
  // Warm up: allocate consumers in proportion to per-type load (the system
  // is stable under this allocation — queues stay bounded), push every
  // pooled structure (slabs, rings, heaps, barrier scratch) past its steady
  // watermark with a burst, and drain it.
  (void)system->step(
      proportional_allocation(system->ensemble(), kGeneratedBudget));
  system->inject_burst(sim::BurstSpec{std::vector<std::size_t>(32, 50)});
  system->run_for(200.0);
  std::uint64_t executed = system->executed_events();
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    system->run_for(50.0);
    benchmark::DoNotOptimize(system->now());
  }
  bench::record_bytes_per_op(state, alloc0);
  const auto events =
      static_cast<std::int64_t>(system->executed_events() - executed);
  state.SetItemsProcessed(events);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  attach_shard_counters(state, shards);
}
BENCHMARK(BM_GeneratedEventThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Full window steps (allocation applied, stats packed) on the same
// ensemble — the ≥2x-at-4-shards window-step throughput target from
// ROADMAP item 2 reads off this arm's ns_per_op ratio vs /1.
void BM_GeneratedWindowStep(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto system = make_generated_system(shards);
  common::ThreadPool pool(static_cast<std::size_t>(shards));
  if (shards >= 2) system->set_thread_pool(&pool);
  const std::vector<int> allocation =
      proportional_allocation(system->ensemble(), kGeneratedBudget);
  (void)system->step(allocation);  // warm pools and barrier scratch
  const std::uint64_t alloc0 = bench::allocation_mark();
  std::uint64_t executed = system->executed_events();
  for (auto _ : state) benchmark::DoNotOptimize(system->step(allocation));
  bench::record_bytes_per_op(state, alloc0);
  const auto events =
      static_cast<std::int64_t>(system->executed_events() - executed);
  state.SetItemsProcessed(state.iterations());
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  attach_shard_counters(state, shards);
}
BENCHMARK(BM_GeneratedWindowStep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MsdWindowStep(benchmark::State& state) {
  auto system = make_msd_system(1);
  system->reset();
  const std::vector<int> allocation{4, 4, 3, 3};
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) benchmark::DoNotOptimize(system->step(allocation));
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MsdWindowStep);

void BM_LigoWindowStep(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kLigoConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_ligo_ensemble(), config);
  system.reset();
  const std::vector<int> allocation{4, 3, 4, 3, 3, 3, 4, 3, 3};
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) benchmark::DoNotOptimize(system.step(allocation));
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LigoWindowStep);

void BM_MsdBurstDrain(benchmark::State& state) {
  auto system = make_msd_system(1);
  const std::vector<int> allocation{4, 4, 3, 3};
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    state.PauseTiming();
    system->reset();
    system->inject_burst(sim::BurstSpec{{100, 100, 100}});
    state.ResumeTiming();
    for (int k = 0; k < 10; ++k)
      benchmark::DoNotOptimize(system->step(allocation));
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MsdBurstDrain);

void BM_SystemReset(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kLigoConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_ligo_ensemble(), config);
  const std::vector<int> allocation(9, 3);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    for (int k = 0; k < 3; ++k) (void)system.step(allocation);
    benchmark::DoNotOptimize(system.reset());
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_SystemReset);

// Reset-reuse cycle on a warmed system: pooled storage (slab, rings, heap,
// window vectors) keeps its capacity across reset(), so the cycle itself
// stays off the allocator.
void BM_ResetReuse(benchmark::State& state) {
  auto system = make_msd_system(1);
  (void)system->step(std::vector<int>{4, 4, 3, 3});  // warm the pools
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    benchmark::DoNotOptimize(system->reset());
    system->run_for(30.0);
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResetReuse);

// Per-thread episode scaling on pooled, reseeded systems — the simulator
// side of BM_ParallelForEpisodes (bench/micro_parallel.cpp): 16 20-window
// episodes per iteration, each shard drawing a long-lived system from an
// ObjectPool. Real time must *drop* as threads are added.
void BM_PooledEpisodes(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  constexpr std::size_t kShards = 16;
  common::ObjectPool<sim::MicroserviceSystem> systems;
  const std::vector<int> hold{4, 4, 3, 3};
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    pool.parallel_for(kShards, [&systems, &hold](std::size_t i) {
      std::unique_ptr<sim::MicroserviceSystem> system = systems.try_acquire();
      if (system != nullptr) {
        system->reseed(shard_seed(7, i));
      } else {
        system = make_msd_system(shard_seed(7, i));
      }
      std::vector<double> wip = system->reset();
      for (int step = 0; step < 20; ++step) wip = system->step(hold).state;
      benchmark::DoNotOptimize(wip.data());
      systems.release(std::move(system));
    });
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShards));
}
BENCHMARK(BM_PooledEpisodes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  return miras::bench::run_benchmarks(argc, argv);
}
