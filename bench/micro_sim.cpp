// Microbenchmarks of the discrete-event emulator (google-benchmark):
// window-step throughput for MSD and LIGO under steady and burst load, and
// raw event-queue operations.
#include <benchmark/benchmark.h>

#include "sim/system.h"
#include "workflows/ligo.h"
#include "workflows/msd.h"

namespace miras {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue events;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      events.schedule(static_cast<double>(i % 97), [&counter] { ++counter; });
    events.run_until(100.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_MsdWindowStep(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);
  system.reset();
  const std::vector<int> allocation{4, 4, 3, 3};
  for (auto _ : state) benchmark::DoNotOptimize(system.step(allocation));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MsdWindowStep);

void BM_LigoWindowStep(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kLigoConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_ligo_ensemble(), config);
  system.reset();
  const std::vector<int> allocation{4, 3, 4, 3, 3, 3, 4, 3, 3};
  for (auto _ : state) benchmark::DoNotOptimize(system.step(allocation));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LigoWindowStep);

void BM_MsdBurstDrain(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);
  const std::vector<int> allocation{4, 4, 3, 3};
  for (auto _ : state) {
    state.PauseTiming();
    system.reset();
    system.inject_burst(sim::BurstSpec{{100, 100, 100}});
    state.ResumeTiming();
    for (int k = 0; k < 10; ++k)
      benchmark::DoNotOptimize(system.step(allocation));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_MsdBurstDrain);

void BM_SystemReset(benchmark::State& state) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kLigoConsumerBudget;
  config.seed = 1;
  sim::MicroserviceSystem system(workflows::make_ligo_ensemble(), config);
  const std::vector<int> allocation(9, 3);
  for (auto _ : state) {
    for (int k = 0; k < 3; ++k) (void)system.step(allocation);
    benchmark::DoNotOptimize(system.reset());
  }
}
BENCHMARK(BM_SystemReset);

}  // namespace
}  // namespace miras

BENCHMARK_MAIN();
