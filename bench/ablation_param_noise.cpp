// §IV-D ablation: parameter-space noise vs action-space noise.
//
// The paper's argument for parameter noise: "actions added by exploration
// noise often violate our constraints on total number of consumers, leading
// to invalid exploration", while perturbing the *network parameters* keeps
// the softmax head intact, so every explored action is still a valid
// categorical distribution. This bench trains MIRAS on MSD with each
// exploration mode and reports (1) the would-be constraint-violation count
// of the raw exploratory actions, and (2) the training trace.
#include <iostream>

#include "bench_util.h"
#include "core/miras_agent.h"
#include "workflows/msd.h"

namespace miras {
namespace {

struct ModeResult {
  std::vector<double> evals;
  std::size_t constraint_violations = 0;
};

ModeResult run_mode(rl::ExplorationMode mode,
                    const bench::BenchOptions& options) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = options.seed + 2;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);

  core::MirasConfig miras_config = core::miras_msd_fast_config();
  miras_config.outer_iterations = options.full ? 8 : 6;
  miras_config.ddpg.exploration = mode;
  // Isolate the noise-mode comparison: disable the auxiliary exploration
  // mixes so the measured actions come from the mode under test.
  miras_config.ddpg.epsilon_random = 0.0;
  miras_config.ddpg.epsilon_demo = 0.0;
  miras_config.random_episode_fraction = 0.15;  // keep model coverage sane
  miras_config.demo_episode_fraction = 0.15;
  miras_config.seed = options.seed + 8;
  core::MirasAgent agent(&system, miras_config);

  ModeResult result;
  for (std::size_t i = 0; i < miras_config.outer_iterations; ++i)
    result.evals.push_back(agent.run_iteration().eval_aggregate_reward);
  result.constraint_violations = agent.ddpg().constraint_violations();
  return result;
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  const std::vector<std::pair<rl::ExplorationMode, std::string>> modes{
      {rl::ExplorationMode::kParameterNoise, "parameter_noise"},
      {rl::ExplorationMode::kActionNoise, "action_noise"},
      {rl::ExplorationMode::kNone, "no_noise"}};

  // The three trainings are independent; run them concurrently and
  // assemble the tables serially in mode order.
  const auto pool = bench::make_pool(options);
  std::vector<ModeResult> results(modes.size());
  {
    const bench::ScopedTimer timer("param-noise ablation", options.threads);
    const auto run_one = [&](std::size_t i) {
      results[i] = run_mode(modes[i].first, options);
    };
    if (pool != nullptr) {
      pool->parallel_for(modes.size(), run_one);
    } else {
      for (std::size_t i = 0; i < modes.size(); ++i) run_one(i);
    }
  }

  Table trace_table({"mode", "iteration", "eval_aggregate_reward"});
  Table summary({"mode", "raw_constraint_violations", "final_eval",
                 "best_eval"});
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const std::string& label = modes[m].second;
    const ModeResult& result = results[m];
    std::cout << "trained with exploration mode: " << label << "\n";
    for (std::size_t i = 0; i < result.evals.size(); ++i)
      trace_table.add_row({label, std::to_string(i + 1),
                           format_double(result.evals[i], 1)});
    summary.add_row(
        {label, std::to_string(result.constraint_violations),
         format_double(result.evals.back(), 1),
         format_double(
             *std::max_element(result.evals.begin(), result.evals.end()), 1)});
  }

  bench::emit(trace_table, options, "Exploration-mode training traces");
  bench::emit(summary, options, "Exploration-mode summary");
  std::cout << "\nExpected shape (paper §IV-D): action-space noise produces\n"
               "many raw constraint violations (floor(C*a) of the perturbed\n"
               "weights overruns the budget) while parameter-space noise\n"
               "produces none and converges at least as well.\n";
  return 0;
}
