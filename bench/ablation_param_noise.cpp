// §IV-D ablation: parameter-space noise vs action-space noise.
//
// The paper's argument for parameter noise: "actions added by exploration
// noise often violate our constraints on total number of consumers, leading
// to invalid exploration", while perturbing the *network parameters* keeps
// the softmax head intact, so every explored action is still a valid
// categorical distribution. This bench trains MIRAS on MSD with each
// exploration mode and reports (1) the would-be constraint-violation count
// of the raw exploratory actions, and (2) the training trace.
#include <iostream>

#include "bench_util.h"
#include "core/miras_agent.h"
#include "workflows/msd.h"

namespace miras {
namespace {

void run_mode(rl::ExplorationMode mode, const std::string& label,
              const bench::BenchOptions& options, Table& trace_table,
              Table& summary) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = options.seed + 2;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);

  core::MirasConfig miras_config = core::miras_msd_fast_config();
  miras_config.outer_iterations = options.full ? 8 : 6;
  miras_config.ddpg.exploration = mode;
  // Isolate the noise-mode comparison: disable the auxiliary exploration
  // mixes so the measured actions come from the mode under test.
  miras_config.ddpg.epsilon_random = 0.0;
  miras_config.ddpg.epsilon_demo = 0.0;
  miras_config.random_episode_fraction = 0.15;  // keep model coverage sane
  miras_config.demo_episode_fraction = 0.15;
  miras_config.seed = options.seed + 8;
  core::MirasAgent agent(&system, miras_config);

  std::cout << "training with exploration mode: " << label << "\n";
  std::vector<double> evals;
  for (std::size_t i = 0; i < miras_config.outer_iterations; ++i)
    evals.push_back(agent.run_iteration().eval_aggregate_reward);

  for (std::size_t i = 0; i < evals.size(); ++i)
    trace_table.add_row({label, std::to_string(i + 1),
                         format_double(evals[i], 1)});
  summary.add_row(
      {label, std::to_string(agent.ddpg().constraint_violations()),
       format_double(evals.back(), 1),
       format_double(*std::max_element(evals.begin(), evals.end()), 1)});
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  Table trace_table({"mode", "iteration", "eval_aggregate_reward"});
  Table summary({"mode", "raw_constraint_violations", "final_eval",
                 "best_eval"});
  run_mode(rl::ExplorationMode::kParameterNoise, "parameter_noise", options,
           trace_table, summary);
  run_mode(rl::ExplorationMode::kActionNoise, "action_noise", options,
           trace_table, summary);
  run_mode(rl::ExplorationMode::kNone, "no_noise", options, trace_table,
           summary);

  bench::emit(trace_table, options, "Exploration-mode training traces");
  bench::emit(summary, options, "Exploration-mode summary");
  std::cout << "\nExpected shape (paper §IV-D): action-space noise produces\n"
               "many raw constraint violations (floor(C*a) of the perturbed\n"
               "weights overruns the budget) while parameter-space noise\n"
               "produces none and converges at least as well.\n";
  return 0;
}
