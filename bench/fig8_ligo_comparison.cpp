// Figure 8: LIGO performance comparison under burst workloads (§VI-D).
//
// Bursts for DataFind/CAT/Full/Injection: (a) 100/100/50/30,
// (b) 150/150/80/50, (c) 80/80/80/80. The paper's observation: MIRAS may
// transiently raise response times at large bursts (it parks the shared
// Coire queue and focuses on upstream stages) but recovers to a low level,
// while the short-horizon baselines do not.
#include "comparison.h"
#include "workflows/ligo.h"

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  bench::ComparisonSetup setup;
  setup.name = "Figure 8 (LIGO)";
  setup.make_ensemble = [] { return workflows::make_ligo_ensemble(); };
  setup.budget = workflows::kLigoConsumerBudget;
  setup.miras_config = options.full ? core::miras_ligo_config()
                                    : core::miras_ligo_fast_config();
  if (!options.full) {
    // The 9-dimensional LIGO control problem needs a larger budget than the
    // shared fast preset to reach the paper's Figure 8 competitiveness
    // (validated: the training trace converges around iteration 8-10 and
    // the resulting policy recovers bursts with tail response times in the
    // tens of seconds). Roughly 20 minutes of single-core CPU.
    setup.miras_config.outer_iterations = 10;
    setup.miras_config.real_steps_per_iteration = 1000;
    setup.miras_config.synthetic_rollouts_per_iteration = 150;
    setup.miras_config.ddpg.actor_hidden = {128, 128};
    setup.miras_config.ddpg.critic_hidden = {128, 128};
  }
  setup.miras_config.seed = options.seed + 31;
  setup.bursts = {{"burst (100,100,50,30)", sim::BurstSpec{{100, 100, 50, 30}}},
                  {"burst (150,150,80,50)", sim::BurstSpec{{150, 150, 80, 50}}},
                  {"burst (80,80,80,80)", sim::BurstSpec{{80, 80, 80, 80}}}};
  setup.steps = 40;
  bench::run_comparison(setup, options);
  return 0;
}
