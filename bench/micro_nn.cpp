// Microbenchmarks of the neural-network substrate (google-benchmark):
// matmul, forward/backward passes at the paper's network sizes, the batched
// vs per-sample inference paths, optimiser steps, and one full DDPG update.
// Every benchmark reports a bytes_per_op counter (heap bytes requested per
// timed iteration) — the workspace-based hot paths are expected to sit at
// zero after warmup. Pass `--json <path>` to dump {op, ns_per_op,
// bytes_per_op, iterations} records (the BENCH_nn.json CI artifact).
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/workspace.h"
#include "rl/ddpg.h"

namespace miras {
namespace {

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n), b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform();
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_TensorMatmulInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n), b(n, n), out(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform();
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    a.matmul_into(b, out);
    benchmark::DoNotOptimize(out.data());
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmulInto)->Arg(64)->Arg(128)->Arg(256);

nn::Network make_mlp(std::size_t width, std::size_t in, std::size_t out,
                     Rng& rng) {
  nn::MlpSpec spec;
  spec.input_dim = in;
  spec.hidden_dims = {width, width, width};
  spec.output_dim = out;
  return nn::Network(spec, rng);
}

// Allocating predict(): fresh tensors every call (the thread-safe
// evaluation-grid path). Baseline for the workspace variants below.
void BM_ActorForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Network net = make_mlp(width, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) benchmark::DoNotOptimize(net.predict(batch));
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_ActorForward)->Arg(64)->Arg(256);  // 256 = paper's MSD actor

// Workspace predict_batch(): same numbers, zero allocations after warmup.
void BM_ActorForwardBatched(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Network net = make_mlp(width, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  nn::Workspace ws;
  nn::Tensor out;
  net.predict_batch(batch, ws, out);  // warmup sizes the workspace
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    net.predict_batch(batch, ws, out);
    benchmark::DoNotOptimize(out.data());
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_ActorForwardBatched)->Arg(64)->Arg(256);

// The same 64 samples pushed through one at a time (64 GEMVs per layer
// instead of one GEMM) — what the lockstep rollout batching removes.
void BM_ActorForwardPerSample(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Network net = make_mlp(width, 4, 4, rng);
  const std::vector<double> x(4, 0.5);
  std::vector<double> y;
  nn::Workspace ws;
  net.predict_one(x, ws, y);  // warmup sizes the workspace
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      net.predict_one(x, ws, y);
      benchmark::DoNotOptimize(y.data());
    }
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_ActorForwardPerSample)->Arg(64)->Arg(256);

void BM_ActorForwardBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Network net = make_mlp(width, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  nn::Tensor target(64, 4, 0.25);
  nn::Tensor loss_grad;
  // Warmup sizes the cached activations, grad ping-pong, and loss grad.
  net.zero_grad();
  nn::mse_loss_into(net.forward(batch), target, loss_grad);
  net.backward(loss_grad);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    net.zero_grad();
    const nn::Tensor& out = net.forward(batch);
    benchmark::DoNotOptimize(nn::mse_loss_into(out, target, loss_grad));
    benchmark::DoNotOptimize(net.backward(loss_grad));
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_ActorForwardBackward)->Arg(64)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  nn::Network net = make_mlp(256, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  nn::Tensor target(64, 4, 0.25);
  nn::Tensor loss_grad;
  net.zero_grad();
  nn::mse_loss_into(net.forward(batch), target, loss_grad);
  net.backward(loss_grad);
  nn::AdamOptimizer adam(1e-3);
  adam.step(net.layers());  // warmup allocates the moment buffers
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) adam.step(net.layers());
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_AdamStep);

void BM_DdpgUpdate(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  rl::DdpgConfig config;
  config.actor_hidden = {width, width, width};
  config.critic_hidden = {width, width, width};
  config.batch_size = 64;
  config.warmup = 64;
  rl::DdpgAgent agent(4, 4, 14, config);
  Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    std::vector<double> s{rng.uniform(0, 50), rng.uniform(0, 50),
                          rng.uniform(0, 50), rng.uniform(0, 50)};
    agent.observe(s, {0.25, 0.25, 0.25, 0.25}, rng.uniform(-5, 0), s);
  }
  agent.update(1);  // warmup sizes the agent's scratch tensors
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) benchmark::DoNotOptimize(agent.update(1));
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_DdpgUpdate)->Arg(64)->Arg(256);

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  return miras::bench::run_benchmarks(argc, argv);
}
