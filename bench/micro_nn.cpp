// Microbenchmarks of the neural-network substrate (google-benchmark):
// matmul, forward/backward passes at the paper's network sizes, optimiser
// steps, and one full DDPG update.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "rl/ddpg.h"

namespace miras {
namespace {

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n), b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.uniform();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(64)->Arg(128)->Arg(256);

nn::Network make_mlp(std::size_t width, std::size_t in, std::size_t out,
                     Rng& rng) {
  nn::MlpSpec spec;
  spec.input_dim = in;
  spec.hidden_dims = {width, width, width};
  spec.output_dim = out;
  return nn::Network(spec, rng);
}

void BM_ActorForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Network net = make_mlp(width, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(net.predict(batch));
}
BENCHMARK(BM_ActorForward)->Arg(64)->Arg(256);  // 256 = paper's MSD actor

void BM_ActorForwardBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Network net = make_mlp(width, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  nn::Tensor target(64, 4, 0.25);
  for (auto _ : state) {
    net.zero_grad();
    const nn::Tensor out = net.forward(batch);
    const nn::LossResult loss = nn::mse_loss(out, target);
    benchmark::DoNotOptimize(net.backward(loss.grad));
  }
}
BENCHMARK(BM_ActorForwardBackward)->Arg(64)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  nn::Network net = make_mlp(256, 4, 4, rng);
  nn::Tensor batch(64, 4, 0.5);
  nn::Tensor target(64, 4, 0.25);
  net.zero_grad();
  net.backward(nn::mse_loss(net.forward(batch), target).grad);
  nn::AdamOptimizer adam(1e-3);
  for (auto _ : state) adam.step(net.layers());
}
BENCHMARK(BM_AdamStep);

void BM_DdpgUpdate(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  rl::DdpgConfig config;
  config.actor_hidden = {width, width, width};
  config.critic_hidden = {width, width, width};
  config.batch_size = 64;
  config.warmup = 64;
  rl::DdpgAgent agent(4, 4, 14, config);
  Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    std::vector<double> s{rng.uniform(0, 50), rng.uniform(0, 50),
                          rng.uniform(0, 50), rng.uniform(0, 50)};
    agent.observe(s, {0.25, 0.25, 0.25, 0.25}, rng.uniform(-5, 0), s);
  }
  for (auto _ : state) benchmark::DoNotOptimize(agent.update(1));
}
BENCHMARK(BM_DdpgUpdate)->Arg(64)->Arg(256);

}  // namespace
}  // namespace miras

BENCHMARK_MAIN();
