// Microbenchmarks of the parallel execution layer (google-benchmark):
// ThreadPool dispatch overhead, parallel_for scaling on simulator-sized
// work units, seed-shard derivation, and the evaluation grid at 1..N
// workers (same result every time — only the wall clock moves).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "baselines/heft.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "sim/system.h"
#include "workflows/msd.h"

namespace miras {
namespace {

void BM_ShardSeed(benchmark::State& state) {
  std::uint64_t root = 0x1234;
  std::uint64_t shard = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard_seed(root, shard));
    ++shard;
  }
}
BENCHMARK(BM_ShardSeed);

void BM_SubmitOverhead(benchmark::State& state) {
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
}
BENCHMARK(BM_SubmitOverhead)->Arg(1)->Arg(2)->Arg(4);

// Simulator-sized work unit: one short seed-sharded episode. The per-shard
// cost (~hundreds of microseconds) is what EvaluationHarness and the MIRAS
// collection loop hand the pool, so this measures realistic scaling, not a
// synthetic spin loop.
void run_episode_shard(std::uint64_t seed) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = seed;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);
  std::vector<double> wip = system.reset();
  const std::vector<int> hold(system.action_dim(),
                              config.consumer_budget /
                                  static_cast<int>(system.action_dim()));
  for (int step = 0; step < 5; ++step) {
    const sim::StepResult result = system.step(hold);
    wip = result.state;
  }
  benchmark::DoNotOptimize(wip.data());
}

void BM_ParallelForEpisodes(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  constexpr std::size_t kShards = 16;
  for (auto _ : state) {
    pool.parallel_for(kShards,
                      [](std::size_t i) { run_episode_shard(shard_seed(7, i)); });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShards));
}
BENCHMARK(BM_ParallelForEpisodes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EvaluationGrid(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  const workflows::Ensemble ensemble = workflows::make_msd_ensemble();
  core::EvaluationHarness harness(
      [](std::uint64_t seed) {
        sim::SystemConfig config;
        config.consumer_budget = workflows::kMsdConsumerBudget;
        config.seed = seed;
        return sim::MicroserviceSystem(workflows::make_msd_ensemble(), config);
      },
      &pool);
  const std::vector<core::PolicySpec> policies{{"heft", [&ensemble] {
                                                  return std::make_unique<
                                                      baselines::HeftPolicy>(
                                                      ensemble);
                                                }}};
  const std::vector<core::ScenarioSpec> scenarios{
      {"steady", core::ScenarioConfig{sim::BurstSpec{}, 10}},
      {"burst", core::ScenarioConfig{sim::BurstSpec{{100, 100, 100}}, 10}}};
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  for (auto _ : state) {
    const core::GridResult grid = harness.run(policies, scenarios, seeds, 4);
    benchmark::DoNotOptimize(grid.summaries.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(scenarios.size() * seeds.size()));
}
BENCHMARK(BM_EvaluationGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace miras

BENCHMARK_MAIN();
