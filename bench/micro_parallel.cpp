// Microbenchmarks of the parallel execution layer (google-benchmark):
// ThreadPool dispatch overhead, parallel_for scaling on simulator-sized
// work units, seed-shard derivation, lockstep rollout batching, and the
// evaluation grid at 1..N workers (same result every time — only the wall
// clock moves). Pass `--json <path>` to dump {op, ns_per_op, bytes_per_op,
// iterations} records (the BENCH_parallel.json CI artifact).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "baselines/heft.h"
#include "bench_json.h"
#include "common/object_pool.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "envmodel/dataset.h"
#include "envmodel/dynamics_model.h"
#include "envmodel/synthetic_env.h"
#include "sim/system.h"
#include "workflows/msd.h"

namespace miras {
namespace {

void BM_ShardSeed(benchmark::State& state) {
  std::uint64_t root = 0x1234;
  std::uint64_t shard = 0;
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard_seed(root, shard));
    ++shard;
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_ShardSeed);

void BM_SubmitOverhead(benchmark::State& state) {
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    auto future = pool.submit([] { return 1; });
    benchmark::DoNotOptimize(future.get());
  }
  bench::record_bytes_per_op(state, alloc0);
}
BENCHMARK(BM_SubmitOverhead)->Arg(1)->Arg(2)->Arg(4);

// Simulator-sized work unit: one seed-sharded 20-window episode. The
// per-shard cost (~100us) is what EvaluationHarness and the MIRAS
// collection loop hand the pool, so this measures realistic scaling, not a
// synthetic spin loop. Like those layers, shards draw a long-lived system
// from an ObjectPool and reseed it — per-shard construction serialised the
// workers on the allocator and made 4 threads *slower* than 1.
void run_episode_shard(common::ObjectPool<sim::MicroserviceSystem>& systems,
                       std::uint64_t seed) {
  std::unique_ptr<sim::MicroserviceSystem> system = systems.try_acquire();
  if (system != nullptr) {
    system->reseed(seed);
  } else {
    sim::SystemConfig config;
    config.consumer_budget = workflows::kMsdConsumerBudget;
    config.seed = seed;
    system = std::make_unique<sim::MicroserviceSystem>(
        workflows::make_msd_ensemble(), config);
  }
  std::vector<double> wip = system->reset();
  const std::vector<int> hold(system->action_dim(),
                              workflows::kMsdConsumerBudget /
                                  static_cast<int>(system->action_dim()));
  for (int step = 0; step < 20; ++step) {
    const sim::StepResult result = system->step(hold);
    wip = result.state;
  }
  benchmark::DoNotOptimize(wip.data());
  systems.release(std::move(system));
}

void BM_ParallelForEpisodes(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  constexpr std::size_t kShards = 16;
  common::ObjectPool<sim::MicroserviceSystem> systems;
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    pool.parallel_for(kShards, [&systems](std::size_t i) {
      run_episode_shard(systems, shard_seed(7, i));
    });
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShards));
}
BENCHMARK(BM_ParallelForEpisodes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EvaluationGrid(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  common::ThreadPool pool(threads);
  const workflows::Ensemble ensemble = workflows::make_msd_ensemble();
  core::EvaluationHarness harness(
      [](std::uint64_t seed) {
        sim::SystemConfig config;
        config.consumer_budget = workflows::kMsdConsumerBudget;
        config.seed = seed;
        return std::make_unique<sim::MicroserviceSystem>(
            workflows::make_msd_ensemble(), config);
      },
      &pool);
  const std::vector<core::PolicySpec> policies{{"heft", [&ensemble] {
                                                  return std::make_unique<
                                                      baselines::HeftPolicy>(
                                                      ensemble);
                                                }}};
  const std::vector<core::ScenarioSpec> scenarios{
      {"steady", core::ScenarioConfig{sim::BurstSpec{}, 10}},
      {"burst", core::ScenarioConfig{sim::BurstSpec{{100, 100, 100}}, 10}}};
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    const core::GridResult grid = harness.run(policies, scenarios, seeds, 4);
    benchmark::DoNotOptimize(grid.summaries.data());
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(scenarios.size() * seeds.size()));
}
BENCHMARK(BM_EvaluationGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Lockstep rollout generation at varying group widths: 8 lanes advanced 25
// steps through a fitted dynamics model in groups of `width`. Width 1 is
// the per-sample path (one B=1 GEMM per lane per layer); width 8 amortises
// the whole group into one (8 x D) GEMM per layer. Lane trajectories are
// bit-identical across widths (SyntheticEnvBatch determinism contract) —
// only the wall clock moves.
void BM_SyntheticRolloutLockstep(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kSteps = 25;
  constexpr std::size_t kStateDim = 4;
  constexpr std::size_t kActionDim = 4;
  constexpr int kBudget = 14;

  envmodel::TransitionDataset dataset(kStateDim, kActionDim);
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    envmodel::Transition t;
    for (std::size_t j = 0; j < kStateDim; ++j)
      t.state.push_back(rng.uniform(0, 50));
    t.action = {3, 4, 3, 4};
    for (std::size_t j = 0; j < kStateDim; ++j)
      t.next_state.push_back(std::max(t.state[j] + rng.uniform(-2, 2), 0.0));
    dataset.add(std::move(t));
  }
  envmodel::DynamicsModelConfig model_config;
  model_config.epochs = 2;
  envmodel::DynamicsModel model(kStateDim, kActionDim, model_config);
  model.fit(dataset);

  const std::vector<int> allocation(kActionDim, 3);
  const std::uint64_t alloc0 = bench::allocation_mark();
  for (auto _ : state) {
    for (std::size_t first = 0; first < kLanes; first += width) {
      const std::size_t count = std::min(width, kLanes - first);
      envmodel::SyntheticEnvBatch batch(&model, nullptr, &dataset, kBudget);
      for (std::size_t l = 0; l < count; ++l)
        batch.add_lane(shard_seed(42, first + l), 0);
      batch.reset_all();
      const std::vector<std::vector<int>> allocations(count, allocation);
      for (std::size_t t = 0; t < kSteps; ++t) batch.step_all(allocations);
      benchmark::DoNotOptimize(batch.state(0).data());
    }
  }
  bench::record_bytes_per_op(state, alloc0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLanes * kSteps));
}
BENCHMARK(BM_SyntheticRolloutLockstep)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  return miras::bench::run_benchmarks(argc, argv);
}
