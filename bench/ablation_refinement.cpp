// §IV-C2 ablation: Lend-Giveback model refinement on vs off.
//
// Two measurements:
//  1. Model behaviour at the WIP boundary: for near-zero states, the raw
//     network's predictions are dominated by environment randomness, while
//     the refined predictions stay consistent with the off-boundary regime
//     (Algorithm 1's purpose).
//  2. End-to-end: MIRAS trained with and without refinement on MSD.
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/stats.h"
#include "core/miras_agent.h"
#include "envmodel/refiner.h"
#include "workflows/msd.h"

namespace miras {
namespace {

struct RefinementResult {
  std::vector<double> evals;
  double burst_aggregate_reward = 0.0;
};

RefinementResult run_refinement_arm(bool use_refiner,
                                    const bench::BenchOptions& options,
                                    std::ostream& out) {
  sim::SystemConfig config;
  config.consumer_budget = workflows::kMsdConsumerBudget;
  config.seed = options.seed + 13;
  sim::MicroserviceSystem system(workflows::make_msd_ensemble(), config);

  core::MirasConfig miras_config = core::miras_msd_fast_config();
  miras_config.outer_iterations = options.full ? 8 : 6;
  miras_config.use_refiner = use_refiner;
  miras_config.seed = options.seed + 14;
  core::MirasAgent agent(&system, miras_config);

  out << "training with refinement " << (use_refiner ? "ON" : "OFF") << "\n";
  RefinementResult result;
  for (std::size_t i = 0; i < miras_config.outer_iterations; ++i)
    result.evals.push_back(agent.run_iteration().eval_aggregate_reward);

  // Boundary-behaviour probe on the final model (always fit thresholds so
  // the refined prediction is available for comparison).
  if (use_refiner) {
    envmodel::ModelRefiner& refiner = agent.refiner();
    Table probe({"state", "raw_wip0_prediction", "refined_wip0_prediction"});
    const std::vector<int> hold(4, 3);
    for (const double w : {0.0, 1.0, 2.0, 5.0, 20.0, 60.0}) {
      const std::vector<double> state{w, w, w, w};
      RunningStats raw_stats, refined_stats;
      for (int rep = 0; rep < 20; ++rep) {
        raw_stats.add(agent.model().predict(state, hold)[0]);
        refined_stats.add(refiner.predict(state, hold)[0]);
      }
      probe.add_numeric_row({w, raw_stats.mean(), refined_stats.mean()}, 2);
    }
    bench::emit(probe, options,
                "Boundary probe: raw vs refined wip[0] prediction "
                "(allocation 3/3/3/3)",
                out);
  }

  // Burst evaluation of the resulting policy.
  auto policy = agent.make_policy();
  sim::SystemConfig eval_config = config;
  eval_config.seed = options.seed + 15;
  sim::MicroserviceSystem eval_system(workflows::make_msd_ensemble(),
                                      eval_config);
  const auto trace = core::run_scenario(
      eval_system, *policy,
      core::ScenarioConfig{sim::BurstSpec{{300, 200, 300}}, 40});
  result.burst_aggregate_reward = trace.aggregate_reward();
  return result;
}

void run_refinement_ablation(const bench::BenchOptions& options) {
  const std::vector<bool> arms{true, false};

  // The two arms are independent trainings; run them concurrently with
  // buffered output, printed in fixed arm order.
  const auto pool = bench::make_pool(options);
  std::vector<RefinementResult> results(arms.size());
  std::vector<std::ostringstream> buffers(arms.size());
  {
    const bench::ScopedTimer timer("refinement ablation", options.threads);
    const auto run_arm = [&](std::size_t i) {
      results[i] = run_refinement_arm(arms[i], options, buffers[i]);
    };
    if (pool != nullptr) {
      pool->parallel_for(arms.size(), run_arm);
    } else {
      for (std::size_t i = 0; i < arms.size(); ++i) run_arm(i);
    }
  }

  Table summary({"refinement", "final_eval", "best_eval",
                 "burst_aggregate_reward"});
  for (std::size_t i = 0; i < arms.size(); ++i) {
    std::cout << buffers[i].str();
    const RefinementResult& result = results[i];
    summary.add_row(
        {arms[i] ? "on" : "off", format_double(result.evals.back(), 1),
         format_double(
             *std::max_element(result.evals.begin(), result.evals.end()), 1),
         format_double(result.burst_aggregate_reward, 1)});
  }
  bench::emit(summary, options, "Refinement ablation summary");
  std::cout << "\nExpected shape (paper §IV-C2): without refinement the\n"
               "model's near-boundary outputs are erratic and the learnt\n"
               "policy over-provisions microservices whose WIP is already\n"
               "zero; with refinement boundary predictions stay consistent\n"
               "and the policy evaluates at least as well.\n";
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  const auto options = miras::bench::parse_options(argc, argv);
  miras::run_refinement_ablation(options);
  return 0;
}
