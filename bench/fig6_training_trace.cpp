// Figure 6: MIRAS policy-training traces (§VI-C).
//
// Runs the iterative model-based training loop (Algorithm 2) on MSD
// (Fig. 6a) and LIGO (Fig. 6b) and prints the aggregated evaluation reward
// after each outer iteration — the paper's y-axis (aggregated reward over
// 25 eval steps for MSD, 100 for LIGO; horizontal axis is the iteration).
// Expected shape: poor early iterations, convergence after a handful of
// iterations, then a stable plateau with run-to-run noise.
//
// Default scale: 8 iterations x 500 real steps with 64-unit networks
// (~1 minute per dataset). --full: the paper's 11 iterations x 1000/2000
// steps with 3x256 / 3x512 networks (hours).
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_util.h"
#include "core/miras_agent.h"
#include "dist/learner.h"
#include "workflows/ligo.h"
#include "workflows/msd.h"

namespace miras {
namespace {

/// Per-episode environment builder for the sharded/distributed collection
/// path. Pure in the seed, so collectors reconstruct identical episodes.
core::EnvFactory make_collection_factory(const std::string& name,
                                         int budget) {
  const bool msd = (name == "MSD");
  return [msd, budget](std::uint64_t seed) -> std::unique_ptr<sim::Env> {
    sim::SystemConfig env_config;
    env_config.consumer_budget = budget;
    env_config.seed = seed;
    return std::make_unique<sim::MicroserviceSystem>(
        msd ? workflows::make_msd_ensemble()
            : workflows::make_ligo_ensemble(),
        env_config);
  };
}

void run_fig6(const std::string& name, workflows::Ensemble ensemble,
              int budget, core::MirasConfig config,
              const bench::BenchOptions& options, common::ThreadPool* pool,
              core::CollectionBackend* backend, std::ostream& out) {
  sim::SystemConfig system_config;
  system_config.consumer_budget = budget;
  system_config.seed = options.seed;
  system_config.shards = options.shards;
  sim::MicroserviceSystem system(std::move(ensemble), system_config);
  // The sharded engine's barriers run on the same pool as the gradient
  // work; with shards == 1 this is a no-op.
  system.set_thread_pool(pool);

  out << "\n=== Figure 6 (" << name << "): " << config.outer_iterations
      << " iterations x " << config.real_steps_per_iteration
      << " real steps, eval over " << config.eval_steps << " steps\n";
  core::MirasAgent agent(&system, config);
  // Gradient work shares the section pool (nested parallel_for is fine —
  // the section thread participates). Deterministic: the trace is
  // byte-identical at any --threads value.
  agent.enable_parallel_training(pool);
  if (backend != nullptr) {
    // Distributed collection executes the same fixed seed-sharded schedule
    // as the in-process parallel engine, so the trace does not depend on
    // the collector count — only on having left sequential mode.
    agent.enable_parallel_collection(pool,
                                     make_collection_factory(name, budget));
    agent.enable_distributed_collection(backend);
  }
  Table table({"iteration", "real_steps_total", "dataset_size",
               "model_train_loss", "eval_aggregate_reward"});
  bench::train_with_checkpoints(
      agent, options, "fig6_" + bench::to_lower(name) + ".ckpt",
      [&](const core::IterationTrace& trace) {
        table.add_row(
            {std::to_string(trace.iteration),
             std::to_string(trace.iteration * config.real_steps_per_iteration),
             std::to_string(trace.dataset_size),
             format_double(trace.model_train_loss, 4),
             format_double(trace.eval_aggregate_reward, 1)});
        out << "  iteration " << trace.iteration
            << ": eval aggregated reward "
            << format_double(trace.eval_aggregate_reward, 1) << "\n";
      });
  bench::emit(table, options, "Figure 6 training trace — " + name, out);
}

struct Fig6Section {
  std::string name;
  workflows::Ensemble ensemble;
  int budget = 0;
  core::MirasConfig config;
};

}  // namespace
}  // namespace miras

int main(int argc, char** argv) {
  using namespace miras;
  const auto options = bench::parse_options(argc, argv);

  std::vector<Fig6Section> sections;
  if (options.dataset.empty() || options.dataset == "msd") {
    core::MirasConfig config = options.full ? core::miras_msd_config()
                                            : core::miras_msd_fast_config();
    config.seed = options.seed + 4;
    sections.push_back(Fig6Section{"MSD", workflows::make_msd_ensemble(),
                                   workflows::kMsdConsumerBudget, config});
  }
  if (options.dataset.empty() || options.dataset == "ligo") {
    core::MirasConfig config = options.full ? core::miras_ligo_config()
                                            : core::miras_ligo_fast_config();
    config.seed = options.seed + 5;
    sections.push_back(Fig6Section{"LIGO", workflows::make_ligo_ensemble(),
                                   workflows::kLigoConsumerBudget, config});
  }

  // A checkpoint file holds ONE section's training state, so resuming (or
  // checkpointing to an explicit path) only makes sense for a single
  // dataset.
  if ((!options.resume.empty() || !options.checkpoint_path.empty()) &&
      sections.size() > 1) {
    std::cerr << "fig6: --resume/--checkpoint-path apply to one training "
                 "run; pick it with --dataset msd|ligo\n";
    return 2;
  }

  // Checkpoints persist the serial engine's two-stream rng snapshot; the
  // sharded engine keeps one stream per task/workflow type, which that
  // shape cannot hold (sim/system.h). Refuse the combination rather than
  // fail mid-run.
  if (options.shards >= 2 &&
      (options.checkpoint_every > 0 || !options.checkpoint_path.empty() ||
       !options.resume.empty())) {
    std::cerr << "fig6: --shards >= 2 does not support checkpointing; drop "
                 "--checkpoint-every/--checkpoint-path/--resume or run with "
                 "--shards 1\n";
    return 2;
  }

  // Distributed-collection flag validation, mirroring the checkpoint
  // refusals above: unsupported combinations exit 2 up front instead of
  // failing mid-run.
  if (options.collectors == 0 &&
      (!options.transport.empty() || options.dist_kill_after > 0)) {
    std::cerr << "fig6: --transport/--dist-kill-after require "
                 "--collectors N with N >= 1\n";
    return 2;
  }
  if (!options.transport.empty() && options.transport != "pipe" &&
      options.transport != "file") {
    std::cerr << "fig6: unknown --transport '" << options.transport
              << "' (expected pipe or file)\n";
    return 2;
  }
  if (options.collectors > 0 && sections.size() > 1) {
    std::cerr << "fig6: --collectors applies to one training run; pick it "
                 "with --dataset msd|ligo\n";
    return 2;
  }
  if (options.collectors > 0 && options.shards >= 2) {
    std::cerr << "fig6: --collectors and --shards >= 2 are incompatible; "
                 "collector processes run the serial event engine\n";
    return 2;
  }

  // Collector processes must be forked while this process is still
  // single-threaded, so the pool is built before any ThreadPool exists.
  std::unique_ptr<dist::CollectorPool> collector_pool;
  if (options.collectors > 0) {
    const Fig6Section& section = sections.front();
    const std::uint64_t fingerprint =
        core::config_fingerprint(section.config);
    const core::EnvFactory factory =
        make_collection_factory(section.name, section.budget);
    dist::PoolOptions pool_options;
    pool_options.collectors = options.collectors;
    pool_options.config_fingerprint = fingerprint;
    pool_options.kill_collector_after = options.dist_kill_after;
    dist::SpawnFn spawn =
        options.transport == "file"
            ? dist::make_fork_file_spawner("fig6_dist_spool", section.config,
                                           factory, fingerprint)
            : dist::make_fork_pipe_spawner(section.config, factory,
                                           fingerprint);
    collector_pool = std::make_unique<dist::CollectorPool>(pool_options,
                                                           std::move(spawn));
  }

  // The two training traces are independent; run them concurrently with
  // buffered output, printed in dataset order so stdout never depends on
  // timing.
  const auto pool = bench::make_pool(options);
  std::vector<std::ostringstream> buffers(sections.size());
  {
    const bench::ScopedTimer timer("fig6 total", options.threads);
    const auto run_section = [&](std::size_t i) {
      Fig6Section& section = sections[i];
      run_fig6(section.name, std::move(section.ensemble), section.budget,
               section.config, options, pool.get(), collector_pool.get(),
               buffers[i]);
    };
    if (pool != nullptr) {
      pool->parallel_for(sections.size(), run_section);
    } else {
      for (std::size_t i = 0; i < sections.size(); ++i) run_section(i);
    }
  }
  for (const auto& buffer : buffers) std::cout << buffer.str();
  return 0;
}
