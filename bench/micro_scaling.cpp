// Scal-style speedup-vs-thread-count sweep (the fix-verification harness
// for the flat parallel-scaling bug): times the three workloads that the
// pool is supposed to accelerate — dynamics-model fit epochs, DDPG updates,
// and pooled episode collection — at 1/2/4/8 threads and reports the
// speedup relative to the 1-thread run of the same workload as a
// first-class field. Unlike the google-benchmark micros this harness owns
// its timing loop, because speedup is a *cross-run* quantity.
//
// Emits (with --json <path>) one record per (workload, threads):
//   {"op": ..., "threads": N, "ns_per_op": ..., "speedup": t1/tN,
//    "cpus": hardware_concurrency}
// The `cpus` field is load-bearing for interpreting the artifact: on a
// 1-core machine every speedup is pinned near 1.0 no matter how good the
// dispatch path is, and the recorded curve must say so rather than imply a
// regression. The CI bench job runs this on multi-core runners and fails on
// real ratio floors (see .github/workflows/ci.yml).
//
// All three workloads produce bit-identical results at every thread count
// (the determinism contract); this harness checks a cheap fingerprint of
// that on the fly and fails loudly on divergence.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

// Timing loop is ours; we only want the reference-comparison helpers.
#define MIRAS_BENCH_JSON_NO_GBENCH
#define MIRAS_BENCH_JSON_NO_ALLOC_HOOKS
#include "bench_json.h"
#include "common/object_pool.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "envmodel/dataset.h"
#include "envmodel/dynamics_model.h"
#include "rl/ddpg.h"
#include "sim/system.h"
#include "workflows/msd.h"

namespace miras {
namespace {

constexpr std::size_t kStateDim = 6;
constexpr std::size_t kActionDim = 6;

std::unique_ptr<common::ThreadPool> make_pool(std::size_t threads) {
  if (threads <= 1) return nullptr;
  return std::make_unique<common::ThreadPool>(threads);
}

// Same synthetic mixing dynamics as micro_train's fit bench.
envmodel::TransitionDataset make_fit_dataset(std::size_t count) {
  envmodel::TransitionDataset data(kStateDim, kActionDim);
  Rng rng(91);
  for (std::size_t i = 0; i < count; ++i) {
    envmodel::Transition t;
    t.state.resize(kStateDim);
    for (double& s : t.state) s = rng.uniform(0.0, 40.0);
    t.action.resize(kActionDim);
    for (int& a : t.action) a = static_cast<int>(rng.uniform_int(0, 4));
    t.next_state.resize(kStateDim);
    for (std::size_t j = 0; j < kStateDim; ++j) {
      const std::size_t k = (j + 1) % kStateDim;
      t.next_state[j] = 0.8 * t.state[j] + 0.15 * t.state[k] -
                        2.0 * t.action[j] + rng.uniform(-0.5, 0.5);
      if (t.next_state[j] < 0.0) t.next_state[j] = 0.0;
    }
    t.reward = -t.state[0];
    data.add(std::move(t));
  }
  return data;
}

/// One measured workload at one thread count: `op` runs the unit of work
/// and returns a result fingerprint (identical across thread counts by the
/// determinism contract — checked by the caller).
struct Measurement {
  double ns_per_op = 0.0;
  double fingerprint = 0.0;
};

/// Times op() at steady state: one warmup call, then enough iterations to
/// fill the budget, repeated `reps` times keeping the fastest rep (minimum
/// filters scheduler noise the way google-benchmark's repetitions do).
Measurement time_op(const std::function<double()>& op, double budget_ms,
                    int reps) {
  using clock = std::chrono::steady_clock;
  Measurement m;
  m.fingerprint = op();  // warmup, also the fingerprint sample
  // Calibrate an iteration count that fills the budget per rep.
  const auto t0 = clock::now();
  (void)op();
  const double probe_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
          .count());
  const int iters = std::max(1, static_cast<int>(budget_ms * 1e6 /
                                                 std::max(probe_ns, 1.0)));
  double best_ns = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = clock::now();
    for (int it = 0; it < iters; ++it) (void)op();
    const double total_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start)
            .count());
    const double ns = total_ns / static_cast<double>(iters);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  m.ns_per_op = best_ns;
  return m;
}

// --- Workload 1: one dynamics-model fit epoch (4096 samples, the paper's
// {20, 20, 20} model). Fingerprint: the returned final-epoch loss.
Measurement run_fit(std::size_t threads, double budget_ms, int reps) {
  const auto data = make_fit_dataset(4096);
  envmodel::DynamicsModelConfig config;
  config.epochs = 1;
  config.seed = 7;
  envmodel::DynamicsModel model(kStateDim, kActionDim, config);
  const auto pool = make_pool(threads);
  model.enable_parallel_training(pool.get());
  return time_op([&] { return model.fit(data); }, budget_ms, reps);
}

// --- Workload 2: one DDPG update (twin critics + delayed actor, 3 x 256
// networks, batch 64). Fingerprint: the critic loss of the last update.
Measurement run_ddpg_update(std::size_t threads, double budget_ms, int reps) {
  rl::DdpgConfig config;
  config.warmup = 64;
  config.seed = 23;
  rl::DdpgAgent agent(kStateDim, kActionDim, /*consumer_budget=*/12, config);
  const auto pool = make_pool(threads);
  agent.enable_parallel_training(pool.get());
  Rng rng(17);
  std::vector<double> s(kStateDim);
  std::vector<double> s_next(kStateDim);
  for (std::size_t i = 0; i < 256; ++i) {
    for (std::size_t j = 0; j < kStateDim; ++j) {
      s[j] = rng.uniform(0.0, 40.0);
      s_next[j] = rng.uniform(0.0, 40.0);
    }
    const auto action = agent.act(s, /*explore=*/true);
    agent.observe(s, action, rng.uniform(-5.0, 0.0), s_next);
  }
  agent.update(4);  // size the replay scratch and TrainPass pools
  // The update sequence differs per call (replay sampling advances), so the
  // cross-thread fingerprint is not meaningful here; report 0.
  auto m = time_op([&] { return agent.update(1); }, budget_ms, reps);
  m.fingerprint = 0.0;
  return m;
}

// --- Workload 3: pooled episode collection — 16 seed-sharded MSD episodes
// of 20 windows each per op (mirrors BM_PooledEpisodes). Fingerprint: sum
// of the final WIP vectors across shards.
Measurement run_pooled_episodes(std::size_t threads, double budget_ms,
                                int reps) {
  common::ThreadPool pool(threads);
  constexpr std::size_t kShards = 16;
  common::ObjectPool<sim::MicroserviceSystem> systems;
  const std::vector<int> hold{4, 4, 3, 3};
  std::vector<double> sums(kShards, 0.0);
  auto op = [&]() -> double {
    pool.parallel_for(kShards, [&systems, &hold, &sums](std::size_t i) {
      std::unique_ptr<sim::MicroserviceSystem> system = systems.try_acquire();
      if (system != nullptr) {
        system->reseed(shard_seed(7, i));
      } else {
        sim::SystemConfig config;
        config.consumer_budget = workflows::kMsdConsumerBudget;
        config.seed = shard_seed(7, i);
        system = std::make_unique<sim::MicroserviceSystem>(
            workflows::make_msd_ensemble(), config);
      }
      std::vector<double> wip = system->reset();
      for (int step = 0; step < 20; ++step) wip = system->step(hold).state;
      double sum = 0.0;
      for (const double w : wip) sum += w;
      sums[i] = sum;
      systems.release(std::move(system));
    });
    double total = 0.0;
    for (const double s : sums) total += s;
    return total;
  };
  return time_op(op, budget_ms, reps);
}

struct ScalingRecord {
  std::string op;
  std::size_t threads = 0;
  double ns_per_op = 0.0;
  double speedup = 1.0;
};

bool write_scaling_json(const std::string& path,
                        const std::vector<ScalingRecord>& records,
                        unsigned cpus) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ScalingRecord& r = records[i];
    out << "  {\"op\": \"" << r.op << "\", \"threads\": " << r.threads
        << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"speedup\": " << r.speedup << ", \"cpus\": " << cpus << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

// Current run vs a checked-in reference, speedup against speedup. The
// checked-in BENCH_scaling.json was recorded on a 1-CPU container where
// every speedup pins near 1.0, so the marker matters here more than
// anywhere: without it a healthy multi-core run looks like a regression
// hunt against nonsense ratios.
void print_reference_comparison(const bench::RefBench& ref,
                                const std::vector<ScalingRecord>& records) {
  if (!ref.loaded) return;
  std::printf("\nvs checked-in reference:\n");
  for (const ScalingRecord& r : records) {
    const auto it = ref.ops.find(r.op);
    if (it == ref.ops.end()) continue;
    const auto speedup = it->second.find("speedup");
    if (speedup == it->second.end()) continue;
    std::printf("  %-24s speedup %.2fx vs ref %.2fx%s\n", r.op.c_str(),
                r.speedup, speedup->second,
                bench::one_cpu_marker(it->second));
  }
}

int scaling_main(int argc, char** argv) {
  std::string json_path;
  bench::RefBench reference;
  double budget_ms = 150.0;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--ref" && i + 1 < argc) {
      // Load up front: --ref may name the file --json overwrites below.
      reference = bench::load_bench_reference(argv[++i]);
    } else if (arg == "--budget-ms" && i + 1 < argc) {
      budget_ms = std::stod(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: micro_scaling [--json path] [--ref path] "
                   "[--budget-ms n] [--reps n]\n");
      return 2;
    }
  }

  using Runner = Measurement (*)(std::size_t, double, int);
  struct Workload {
    const char* name;
    Runner run;
    bool check_fingerprint;
  };
  const Workload workloads[] = {
      {"fit_epoch", &run_fit, true},
      {"ddpg_update", &run_ddpg_update, false},
      {"pooled_episodes", &run_pooled_episodes, true},
  };
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const unsigned cpus = std::thread::hardware_concurrency();

  std::vector<ScalingRecord> records;
  bool fingerprints_ok = true;
  std::printf("cpus: %u\n", cpus);
  for (const Workload& w : workloads) {
    double base_ns = 0.0;
    double base_fp = 0.0;
    for (const std::size_t threads : thread_counts) {
      const Measurement m = w.run(threads, budget_ms, reps);
      if (threads == 1) {
        base_ns = m.ns_per_op;
        base_fp = m.fingerprint;
      } else if (w.check_fingerprint && m.fingerprint != base_fp) {
        std::fprintf(stderr,
                     "FAIL %s: fingerprint diverged at %zu threads "
                     "(%.17g vs %.17g)\n",
                     w.name, threads, m.fingerprint, base_fp);
        fingerprints_ok = false;
      }
      ScalingRecord r;
      r.op = std::string(w.name) + "/" + std::to_string(threads);
      r.threads = threads;
      r.ns_per_op = m.ns_per_op;
      r.speedup = m.ns_per_op > 0.0 ? base_ns / m.ns_per_op : 0.0;
      std::printf("%-24s %8.3f ms/op   speedup %.2fx\n", r.op.c_str(),
                  m.ns_per_op / 1e6, r.speedup);
      records.push_back(std::move(r));
    }
  }

  print_reference_comparison(reference, records);

  if (!json_path.empty() && !write_scaling_json(json_path, records, cpus)) {
    std::fprintf(stderr, "failed to write scaling json to %s\n",
                 json_path.c_str());
    return 1;
  }
  return fingerprints_ok ? 0 : 1;
}

}  // namespace
}  // namespace miras

int main(int argc, char** argv) { return miras::scaling_main(argc, argv); }
