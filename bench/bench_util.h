// Shared helpers for the figure-regeneration harnesses: flag parsing and
// policy-vs-scenario sweep running. Each bench binary prints the series the
// corresponding paper figure plots, as aligned tables (and CSV on request).
#pragma once

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/miras_agent.h"
#include "rl/policy.h"
#include "sim/system.h"

namespace miras::bench {

/// Common command-line options for the figure benches.
struct BenchOptions {
  /// Paper-scale runs (11 outer iterations, full sample counts, the paper's
  /// 3x256 / 3x512 networks) instead of the reduced default scale.
  bool full = false;
  /// Emit CSV instead of aligned tables.
  bool csv = false;
  std::uint64_t seed = 1;
  /// Optional dataset filter for benches covering both ensembles:
  /// "msd", "ligo", or "" (both).
  std::string dataset;
  /// Worker threads (--threads N; --threads 0 means all hardware threads).
  /// Result tables are byte-identical for every value — only wall time
  /// changes. Timing goes to stderr so stdout stays comparable.
  std::size_t threads = 1;
  /// Event-engine shards for the real system (--shards N): 1 = the serial
  /// engine, >= 2 = the sharded engine (sim/shard.h), whose trajectory is
  /// deterministic but distinct from serial. Incompatible with the
  /// checkpoint flags: checkpoints capture the serial engine's two-stream
  /// rng snapshot, which sharded mode (one stream per task/workflow type)
  /// cannot fit.
  int shards = 1;
  /// Save a training checkpoint after every N outer iterations (0 = off).
  std::size_t checkpoint_every = 0;
  /// Where checkpoints land; empty means a per-section default path.
  std::string checkpoint_path;
  /// Resume training from this checkpoint before running any iterations.
  /// The resumed run continues bit-identically to one that never stopped.
  std::string resume;
  /// Collector processes for distributed data collection (--collectors N).
  /// 0 = the in-process engine, byte-identical to previous behaviour.
  /// N >= 1 forks N collectors that execute the same fixed seed-sharded
  /// collection schedule; results are bit-identical for any N and across
  /// repeated runs (dist/learner.h).
  std::size_t collectors = 0;
  /// Transport for --collectors: "pipe" (socketpairs) or "file"
  /// (append-only spool files). Empty = unset; resolves to pipe when
  /// collectors are on, refused when given without --collectors.
  std::string transport;
  /// Chaos knob (--dist-kill-after N): SIGKILL collector 0 once N batches
  /// have been folded, exercising the respawn path mid-run. The trace must
  /// come out identical anyway. 0 = off.
  std::size_t dist_kill_after = 0;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      options.full = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dataset" && i + 1 < argc) {
      options.dataset = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::strtoull(argv[++i], nullptr, 10);
      if (options.threads == 0)
        options.threads = common::ThreadPool::hardware_threads();
    } else if (arg == "--shards" && i + 1 < argc) {
      options.shards = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (options.shards < 1) options.shards = 1;
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      options.checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--checkpoint-path" && i + 1 < argc) {
      options.checkpoint_path = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      options.resume = argv[++i];
    } else if (arg == "--collectors" && i + 1 < argc) {
      options.collectors = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--transport" && i + 1 < argc) {
      options.transport = argv[++i];
    } else if (arg == "--dist-kill-after" && i + 1 < argc) {
      options.dist_kill_after = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--full] [--csv] [--seed N] [--dataset msd|ligo]"
                   " [--threads N] [--shards N] [--checkpoint-every N]"
                   " [--checkpoint-path FILE] [--resume FILE]"
                   " [--collectors N] [--transport pipe|file]"
                   " [--dist-kill-after N]\n";
      std::exit(0);
    }
  }
  return options;
}

inline std::string to_lower(std::string s) {
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Drives a MIRAS training run under the checkpoint flags: restores from
/// --resume first (if given), then runs outer iterations until the config's
/// total, saving to the checkpoint path after every --checkpoint-every
/// iterations. `on_trace` sees only the iterations executed in THIS process
/// — a resumed run re-prints nothing, so concatenating the pre-kill and
/// post-resume outputs reproduces the uninterrupted run's rows.
inline void train_with_checkpoints(
    core::MirasAgent& agent, const BenchOptions& options,
    const std::string& default_checkpoint_path,
    const std::function<void(const core::IterationTrace&)>& on_trace) {
  const std::string path = options.checkpoint_path.empty()
                               ? default_checkpoint_path
                               : options.checkpoint_path;
  if (!options.resume.empty()) agent.restore_checkpoint(options.resume);
  const std::size_t total = agent.config().outer_iterations;
  while (agent.iterations_run() < total) {
    on_trace(agent.run_iteration());
    if (options.checkpoint_every > 0 &&
        agent.iterations_run() % options.checkpoint_every == 0)
      agent.save_checkpoint(path);
  }
}

/// Pool for the requested worker count, or null for the single-threaded
/// path. Both paths produce identical results by construction; the null
/// pool just skips the dispatch overhead.
inline std::unique_ptr<common::ThreadPool> make_pool(
    const BenchOptions& options) {
  if (options.threads <= 1) return nullptr;
  return std::make_unique<common::ThreadPool>(options.threads);
}

/// Prints "[timing] <label>: <seconds>s (threads=N)" to stderr on
/// destruction. stderr, so `--threads 1` and `--threads N` stdout stay
/// byte-comparable; diff the tables, compare the timings.
class ScopedTimer {
 public:
  ScopedTimer(std::string label, std::size_t threads)
      : label_(std::move(label)),
        threads_(threads),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    std::cerr << "[timing] " << label_ << ": " << elapsed.count()
              << "s (threads=" << threads_ << ")\n";
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  std::size_t threads_;
  std::chrono::steady_clock::time_point start_;
};

inline void emit(const Table& table, const BenchOptions& options,
                 const std::string& title, std::ostream& out = std::cout) {
  out << "\n## " << title << "\n";
  if (options.csv) {
    table.write_csv(out);
  } else {
    table.write_aligned(out);
  }
}

/// One comparison entry: a named policy evaluated on a fresh system.
struct PolicyEntry {
  std::string label;
  rl::Policy* policy;
};

/// Runs every policy through the scenario on identically-seeded fresh
/// systems (same arrival trace), returning one trace per policy.
template <typename MakeSystem>
std::vector<core::EvaluationTrace> run_policies(
    MakeSystem&& make_system, const std::vector<PolicyEntry>& policies,
    const core::ScenarioConfig& scenario) {
  std::vector<core::EvaluationTrace> traces;
  for (const PolicyEntry& entry : policies) {
    sim::MicroserviceSystem system = make_system();
    traces.push_back(core::run_scenario(system, *entry.policy, scenario));
    traces.back().policy_name = entry.label;
  }
  return traces;
}

/// Prints the per-step response-time series of several traces side by side
/// (the layout of Figures 7 and 8).
inline Table response_time_table(
    const std::vector<core::EvaluationTrace>& traces) {
  std::vector<std::string> header{"step"};
  for (const auto& trace : traces) header.push_back(trace.policy_name);
  Table table(header);
  if (traces.empty()) return table;
  const std::size_t steps = traces.front().windows.size();
  std::vector<std::vector<double>> series;
  series.reserve(traces.size());
  for (const auto& trace : traces) series.push_back(trace.response_time_series());
  for (std::size_t k = 0; k < steps; ++k) {
    std::vector<double> row{static_cast<double>(k)};
    for (const auto& s : series) row.push_back(s[k]);
    table.add_numeric_row(row, 1);
  }
  return table;
}

/// Scalar summary per policy: aggregate reward, mean/tail response time,
/// final WIP.
inline Table summary_table(const std::vector<core::EvaluationTrace>& traces,
                           std::size_t tail_windows) {
  Table table({"policy", "aggregate_reward", "mean_rt_s", "tail_rt_s",
               "final_total_wip"});
  for (const auto& trace : traces) {
    table.add_row({trace.policy_name,
                   format_double(trace.aggregate_reward(), 1),
                   format_double(trace.mean_response_time(), 1),
                   format_double(trace.tail_mean_response_time(tail_windows), 1),
                   format_double(trace.total_wip_series().back(), 1)});
  }
  return table;
}

}  // namespace miras::bench
